//! Record, inspect, and replay reader-report traces.
//!
//! A trace is the report stream a reader hands the recognizer — the exact
//! boundary `rfid_gen2::report::TagReport` defines — captured to disk in
//! either JSON-lines (`.jsonl`, greppable) or length-prefixed binary
//! (`.rftrace`, compact) framing. Because every simulated session is
//! seeded, a replayed trace reproduces the live recognition bit for bit;
//! `replay` checks exactly that.
//!
//! Usage:
//!
//! ```text
//! trace_tool record <out.jsonl|out.rftrace> [letter]
//! trace_tool inspect <trace>
//! trace_tool replay <trace>
//! trace_tool stats <trace> [--bench]
//! trace_tool checkpoint <trace>
//! trace_tool spans <dump.json>
//! ```
//!
//! `record` simulates the golden session (or one writing `letter`) on the
//! golden bench and writes the trace; the framing is picked from the file
//! extension (`.jsonl` → JSON lines, anything else → binary). `inspect`
//! prints a summary without recognizing. `replay` feeds the trace through
//! the batch recognizer and the online pipeline of a freshly rebuilt
//! golden bench and prints what they see. `stats` replays the trace
//! through an instrumented online pipeline and prints the Prometheus text
//! exposition of the process-global metrics registry (self-validated);
//! with `--bench` it also times instrumented vs `RFIPAD_LOG=off` replays
//! and merges a `telemetry_overhead` entry into `BENCH_pipeline.json`.
//! `checkpoint` interrupts an online replay halfway, ships the session
//! through the checkpoint JSON wire form, resumes on a fresh pipeline,
//! and exits nonzero unless the stitched event stream matches an
//! uninterrupted replay — the migration smoke test bench-check runs.
//! `spans` renders a flight-recorder dump — the body of
//! `/debug/trace/<session>` on a serving engine's endpoint — as a text
//! timeline: one line per span, children indented under their parents.

use experiments::golden::{golden_bench, golden_trial, GOLDEN_LETTER, GOLDEN_TRIAL_SEED};
use hand_kinematics::user::UserProfile;
use rfid_gen2::report::TagReport;
use rfid_gen2::source::{ReportSource, TraceSource};
use rfid_gen2::trace::{write_trace_file, TraceFormat};
use rfipad::{OnlinePipeline, PipelineEvent, Recognizer, RfipadError};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!("usage: trace_tool record <out.jsonl|out.rftrace> [letter]");
    eprintln!("       trace_tool inspect <trace>");
    eprintln!("       trace_tool replay <trace>");
    eprintln!("       trace_tool stats <trace> [--bench]");
    eprintln!("       trace_tool checkpoint <trace>");
    eprintln!("       trace_tool spans <dump.json>");
    ExitCode::FAILURE
}

fn read_trace(path: &str) -> Result<Vec<TagReport>, RfipadError> {
    let mut source =
        TraceSource::open(path).map_err(|e| RfipadError::Source(format!("{path}: {e}")))?;
    source
        .try_collect_reports()
        .map_err(|e| RfipadError::Source(format!("{path}: {e}")))
}

fn record(out: &str, letter: char) -> Result<(), RfipadError> {
    let format = if out.ends_with(".jsonl") {
        TraceFormat::JsonLines
    } else {
        TraceFormat::Binary
    };
    obs::info!("calibrating golden bench");
    let bench = golden_bench();
    obs::info!("recording letter"; letter = letter, seed = GOLDEN_TRIAL_SEED);
    let trial = bench.run_letter_trial(letter, &UserProfile::average(), GOLDEN_TRIAL_SEED);
    write_trace_file(out, format, &trial.reports)
        .map_err(|e| RfipadError::Source(format!("{out}: {e}")))?;
    println!(
        "wrote {} reports to {out} ({:?}); live recognition: {:?}",
        trial.reports.len(),
        format,
        trial.result.letter
    );
    Ok(())
}

fn inspect(path: &str) -> Result<(), RfipadError> {
    let reports = read_trace(path)?;
    if reports.is_empty() {
        println!("{path}: empty trace");
        return Ok(());
    }
    let tags: BTreeSet<_> = reports.iter().map(|r| r.tag).collect();
    let channels: BTreeSet<_> = reports.iter().map(|r| r.channel_index).collect();
    let t0 = reports.first().expect("nonempty").time;
    let t1 = reports.last().expect("nonempty").time;
    println!("{path}:");
    println!("  reports:  {}", reports.len());
    println!("  span:     {t0:.3} .. {t1:.3} s ({:.3} s)", t1 - t0);
    println!("  tags:     {}", tags.len());
    println!(
        "  rate:     {:.0} reads/s",
        reports.len() as f64 / (t1 - t0).max(1e-9)
    );
    println!(
        "  channels: {:?}{}",
        channels,
        if channels == BTreeSet::from([0]) {
            " (fixed carrier)"
        } else {
            ""
        }
    );
    Ok(())
}

fn replay(path: &str) -> Result<(), RfipadError> {
    let reports = read_trace(path)?;
    obs::info!("rebuilding golden bench");
    let bench = golden_bench();

    let result = bench.recognizer.recognize_session(&reports);
    println!("batch replay of {} reports:", reports.len());
    for (i, s) in result.strokes.iter().enumerate() {
        println!(
            "  stroke {}: {} over {:.2} .. {:.2} s",
            i + 1,
            s.stroke,
            s.span.start,
            s.span.end
        );
    }
    println!("  letter: {:?}", result.letter);

    let mut pipeline = OnlinePipeline::builder()
        .recognizer(bench.recognizer.clone())
        .letter_gap_s(1.5)
        .build()?;
    let mut online_letter = None;
    let mut strokes = 0usize;
    for r in &reports {
        for event in pipeline.push(*r) {
            match event {
                PipelineEvent::StrokeDetected { .. } => strokes += 1,
                PipelineEvent::LetterRecognized { letter, .. } => online_letter = letter,
            }
        }
    }
    for event in pipeline.finish() {
        match event {
            PipelineEvent::StrokeDetected { .. } => strokes += 1,
            PipelineEvent::LetterRecognized { letter, .. } => online_letter = letter,
        }
    }
    println!("online replay: {strokes} strokes, letter {online_letter:?}");

    let live = golden_trial(&bench);
    if reports == live.reports {
        println!(
            "trace matches the live golden session bit for bit ('{GOLDEN_LETTER}', {} reports)",
            live.reports.len()
        );
    } else {
        println!("note: trace differs from the golden session (custom recording?)");
    }
    Ok(())
}

/// One full online replay of `reports`; returns (strokes, letter).
fn replay_online(
    recognizer: &Recognizer,
    reports: &[TagReport],
) -> Result<(usize, Option<char>), RfipadError> {
    let mut pipeline = OnlinePipeline::builder()
        .recognizer(recognizer.clone())
        .letter_gap_s(1.5)
        .build()?;
    let mut letter = None;
    let mut strokes = 0usize;
    let mut handle = |event: PipelineEvent| match event {
        PipelineEvent::StrokeDetected { .. } => strokes += 1,
        PipelineEvent::LetterRecognized { letter: l, .. } => letter = l,
    };
    for r in reports {
        for event in pipeline.push(*r) {
            handle(event);
        }
    }
    for event in pipeline.finish() {
        handle(event);
    }
    Ok((strokes, letter))
}

/// Replays and telemetry-off replays interleaved; returns the best
/// (lowest) wall-clock seconds seen for (instrumented, disabled).
fn time_overhead(
    recognizer: &Recognizer,
    reports: &[TagReport],
    trials: u32,
    rounds: u32,
) -> Result<(f64, f64), RfipadError> {
    let restore = obs::max_level();
    let timed = |level: obs::Level| -> Result<f64, RfipadError> {
        obs::set_level(level);
        let start = Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(replay_online(recognizer, reports)?);
        }
        Ok(start.elapsed().as_secs_f64())
    };
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    let result = (|| {
        for _ in 0..trials {
            best_on = best_on.min(timed(obs::Level::Info)?);
            best_off = best_off.min(timed(obs::Level::Off)?);
        }
        Ok(())
    })();
    obs::set_level(restore);
    result.map(|()| (best_on, best_off))
}

fn stats(path: &str, bench_overhead: bool) -> Result<(), RfipadError> {
    let reports = read_trace(path)?;
    obs::info!("rebuilding golden bench");
    let bench = golden_bench();

    // The instrumented replay populates the process-global registry:
    // stage histograms, pipeline counters, reader counters from the
    // trace decode above.
    let (strokes, letter) = replay_online(&bench.recognizer, &reports)?;
    obs::info!("replayed trace"; reports = reports.len(), strokes = strokes,
        letter = format!("{letter:?}"));

    let text = obs::registry().render_prometheus();
    obs::expo::validate(&text)
        .map_err(|e| RfipadError::Source(format!("exposition failed validation: {e}")))?;
    print!("{text}");

    if bench_overhead {
        obs::info!("timing instrumented vs disabled-telemetry replays");
        let (rounds, trials) = (10u32, 3u32);
        let (on_s, off_s) = time_overhead(&bench.recognizer, &reports, trials, rounds)?;
        let per_mode = u64::from(rounds) * reports.len() as u64;
        let on_rps = per_mode as f64 / on_s;
        let off_rps = per_mode as f64 / off_s;
        let overhead_pct = (on_s / off_s - 1.0) * 100.0;
        let entry = format!(
            "{{ \"reports\": {}, \"rounds_per_mode\": {rounds}, \
             \"instrumented_reports_per_s\": {on_rps:.0}, \
             \"disabled_reports_per_s\": {off_rps:.0}, \
             \"overhead_pct\": {overhead_pct:.2} }}",
            reports.len()
        );
        experiments::benchjson::merge_entry("telemetry_overhead", &entry)
            .map_err(|e| RfipadError::Source(format!("BENCH_pipeline.json: {e}")))?;
        obs::info!("merged telemetry_overhead into BENCH_pipeline.json";
            overhead_pct = format!("{overhead_pct:.2}"));
        if overhead_pct > 3.0 {
            obs::warn!("telemetry overhead above the 3% budget";
                overhead_pct = format!("{overhead_pct:.2}"));
        }
    }
    Ok(())
}

/// Interrupts an online replay of the trace at its halfway report,
/// round-trips the checkpoint through JSON, resumes on a fresh pipeline,
/// and verifies the stitched event stream equals an uninterrupted replay.
fn checkpoint(path: &str) -> Result<(), RfipadError> {
    use rfipad::engine::normalize_events;
    use rfipad::PipelineCheckpoint;
    let reports = read_trace(path)?;
    if reports.len() < 2 {
        return Err(RfipadError::Source(format!(
            "{path}: need at least 2 reports to interrupt a replay"
        )));
    }
    obs::info!("rebuilding golden bench");
    let bench = golden_bench();
    let pipeline = || {
        OnlinePipeline::builder()
            .recognizer(bench.recognizer.clone())
            .letter_gap_s(1.5)
            .build()
    };

    let mut uninterrupted = Vec::new();
    let mut p = pipeline()?;
    for r in &reports {
        p.push_into(*r, &mut uninterrupted);
    }
    p.finish_into(&mut uninterrupted);
    normalize_events(&mut uninterrupted);

    let split = reports.len() / 2;
    let mut stitched = Vec::new();
    let mut first = pipeline()?;
    for r in &reports[..split] {
        first.push_into(*r, &mut stitched);
    }
    let wire = first.checkpoint().to_json();
    drop(first); // only the serialized snapshot crosses the "migration"
    let mut resumed = pipeline()?;
    resumed.restore(&PipelineCheckpoint::from_json(&wire)?)?;
    for r in &reports[split..] {
        resumed.push_into(*r, &mut stitched);
    }
    resumed.finish_into(&mut stitched);
    normalize_events(&mut stitched);

    if stitched != uninterrupted {
        return Err(RfipadError::Source(format!(
            "checkpoint/restore at report {split} diverged: {} events, \
             uninterrupted replay has {}",
            stitched.len(),
            uninterrupted.len()
        )));
    }
    println!(
        "checkpoint/restore at report {split}/{} reproduced the uninterrupted \
         stream ({} events, {} checkpoint bytes)",
        reports.len(),
        uninterrupted.len(),
        wire.len()
    );
    Ok(())
}

/// Renders a flight-recorder dump (`/debug/trace/<session>` body, or any
/// file of span-event JSON lines) as a per-trace text timeline.
fn spans(path: &str) -> Result<(), RfipadError> {
    use obs::trace::SpanEvent;
    let text =
        std::fs::read_to_string(path).map_err(|e| RfipadError::Source(format!("{path}: {e}")))?;
    let mut events: Vec<SpanEvent> = text
        .lines()
        .filter_map(|line| SpanEvent::from_json(line.trim().trim_end_matches(',')))
        .collect();
    if events.is_empty() {
        return Err(RfipadError::Source(format!(
            "{path}: no span events (expected the JSON body of /debug/trace/<session>)"
        )));
    }
    let dropped = text
        .split_once("\"dropped\":")
        .and_then(|(_, rest)| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or(0u64);
    events.sort_by_key(|e| (e.trace.0, e.start_us, e.end_us));

    // Depth = parent-chain length within the dump; orphaned parents (the
    // span fell off the ring) count as roots.
    let parents: std::collections::HashMap<u64, Option<u64>> = events
        .iter()
        .map(|e| (e.span.0, e.parent.map(|p| p.0)))
        .collect();
    let depth_of = |e: &SpanEvent| {
        let mut depth = 0usize;
        let mut cursor = e.parent.map(|p| p.0);
        while let Some(p) = cursor {
            if !parents.contains_key(&p) || depth >= 16 {
                break;
            }
            depth += 1;
            cursor = parents.get(&p).copied().flatten();
        }
        depth
    };

    println!(
        "{} spans ({} dropped from the ring){}",
        events.len(),
        dropped,
        if dropped > 0 {
            " — oldest spans are missing"
        } else {
            ""
        }
    );
    let mut current_trace = None;
    let mut t0 = 0u64;
    for e in &events {
        if current_trace != Some(e.trace.0) {
            current_trace = Some(e.trace.0);
            t0 = events
                .iter()
                .filter(|x| x.trace == e.trace)
                .map(|x| x.start_us)
                .min()
                .unwrap_or(e.start_us);
            println!("trace {:016x}:", e.trace.0);
        }
        println!(
            "  +{:>10.3} ms {:>10.3} ms  {}{}",
            (e.start_us - t0) as f64 / 1e3,
            (e.end_us.saturating_sub(e.start_us)) as f64 / 1e3,
            "  ".repeat(depth_of(e)),
            e.name,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, out] if cmd == "record" => record(out, GOLDEN_LETTER),
        [cmd, out, letter] if cmd == "record" => match letter.chars().next() {
            Some(c) if letter.chars().count() == 1 => record(out, c.to_ascii_uppercase()),
            _ => return usage(),
        },
        [cmd, path] if cmd == "inspect" => inspect(path),
        [cmd, path] if cmd == "replay" => replay(path),
        [cmd, path] if cmd == "stats" => stats(path, false),
        [cmd, path, flag] if cmd == "stats" && flag == "--bench" => stats(path, true),
        [cmd, path] if cmd == "checkpoint" => checkpoint(path),
        [cmd, path] if cmd == "spans" => spans(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error!("{e}");
            ExitCode::FAILURE
        }
    }
}
