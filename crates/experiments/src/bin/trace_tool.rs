//! Record, inspect, and replay reader-report traces.
//!
//! A trace is the report stream a reader hands the recognizer — the exact
//! boundary `rfid_gen2::report::TagReport` defines — captured to disk in
//! either JSON-lines (`.jsonl`, greppable) or length-prefixed binary
//! (`.rftrace`, compact) framing. Because every simulated session is
//! seeded, a replayed trace reproduces the live recognition bit for bit;
//! `replay` checks exactly that.
//!
//! Usage:
//!
//! ```text
//! trace_tool record <out.jsonl|out.rftrace> [letter]
//! trace_tool inspect <trace>
//! trace_tool replay <trace>
//! ```
//!
//! `record` simulates the golden session (or one writing `letter`) on the
//! golden bench and writes the trace; the framing is picked from the file
//! extension (`.jsonl` → JSON lines, anything else → binary). `inspect`
//! prints a summary without recognizing. `replay` feeds the trace through
//! the batch recognizer and the online pipeline of a freshly rebuilt
//! golden bench and prints what they see.

use experiments::golden::{golden_bench, golden_trial, GOLDEN_LETTER, GOLDEN_TRIAL_SEED};
use hand_kinematics::user::UserProfile;
use rfid_gen2::report::TagReport;
use rfid_gen2::source::{ReportSource, TraceSource};
use rfid_gen2::trace::{write_trace_file, TraceFormat};
use rfipad::{OnlinePipeline, PipelineEvent, RfipadError};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: trace_tool record <out.jsonl|out.rftrace> [letter]");
    eprintln!("       trace_tool inspect <trace>");
    eprintln!("       trace_tool replay <trace>");
    ExitCode::FAILURE
}

fn read_trace(path: &str) -> Result<Vec<TagReport>, RfipadError> {
    let mut source =
        TraceSource::open(path).map_err(|e| RfipadError::Source(format!("{path}: {e}")))?;
    source
        .try_collect_reports()
        .map_err(|e| RfipadError::Source(format!("{path}: {e}")))
}

fn record(out: &str, letter: char) -> Result<(), RfipadError> {
    let format = if out.ends_with(".jsonl") {
        TraceFormat::JsonLines
    } else {
        TraceFormat::Binary
    };
    eprintln!("calibrating golden bench …");
    let bench = golden_bench();
    eprintln!("recording letter '{letter}' (seed {GOLDEN_TRIAL_SEED}) …");
    let trial = bench.run_letter_trial(letter, &UserProfile::average(), GOLDEN_TRIAL_SEED);
    write_trace_file(out, format, &trial.reports)
        .map_err(|e| RfipadError::Source(format!("{out}: {e}")))?;
    println!(
        "wrote {} reports to {out} ({:?}); live recognition: {:?}",
        trial.reports.len(),
        format,
        trial.result.letter
    );
    Ok(())
}

fn inspect(path: &str) -> Result<(), RfipadError> {
    let reports = read_trace(path)?;
    if reports.is_empty() {
        println!("{path}: empty trace");
        return Ok(());
    }
    let tags: BTreeSet<_> = reports.iter().map(|r| r.tag).collect();
    let channels: BTreeSet<_> = reports.iter().map(|r| r.channel_index).collect();
    let t0 = reports.first().expect("nonempty").time;
    let t1 = reports.last().expect("nonempty").time;
    println!("{path}:");
    println!("  reports:  {}", reports.len());
    println!("  span:     {t0:.3} .. {t1:.3} s ({:.3} s)", t1 - t0);
    println!("  tags:     {}", tags.len());
    println!(
        "  rate:     {:.0} reads/s",
        reports.len() as f64 / (t1 - t0).max(1e-9)
    );
    println!(
        "  channels: {:?}{}",
        channels,
        if channels == BTreeSet::from([0]) {
            " (fixed carrier)"
        } else {
            ""
        }
    );
    Ok(())
}

fn replay(path: &str) -> Result<(), RfipadError> {
    let reports = read_trace(path)?;
    eprintln!("rebuilding golden bench …");
    let bench = golden_bench();

    let result = bench.recognizer.recognize_session(&reports);
    println!("batch replay of {} reports:", reports.len());
    for (i, s) in result.strokes.iter().enumerate() {
        println!(
            "  stroke {}: {} over {:.2} .. {:.2} s",
            i + 1,
            s.stroke,
            s.span.start,
            s.span.end
        );
    }
    println!("  letter: {:?}", result.letter);

    let mut pipeline = OnlinePipeline::builder()
        .recognizer(bench.recognizer.clone())
        .letter_gap_s(1.5)
        .build()?;
    let mut online_letter = None;
    let mut strokes = 0usize;
    for r in &reports {
        for event in pipeline.push(*r) {
            match event {
                PipelineEvent::StrokeDetected { .. } => strokes += 1,
                PipelineEvent::LetterRecognized { letter, .. } => online_letter = letter,
            }
        }
    }
    for event in pipeline.finish() {
        match event {
            PipelineEvent::StrokeDetected { .. } => strokes += 1,
            PipelineEvent::LetterRecognized { letter, .. } => online_letter = letter,
        }
    }
    println!("online replay: {strokes} strokes, letter {online_letter:?}");

    let live = golden_trial(&bench);
    if reports == live.reports {
        println!(
            "trace matches the live golden session bit for bit ('{GOLDEN_LETTER}', {} reports)",
            live.reports.len()
        );
    } else {
        println!("note: trace differs from the golden session (custom recording?)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, out] if cmd == "record" => record(out, GOLDEN_LETTER),
        [cmd, out, letter] if cmd == "record" => match letter.chars().next() {
            Some(c) if letter.chars().count() == 1 => record(out, c.to_ascii_uppercase()),
            _ => return usage(),
        },
        [cmd, path] if cmd == "inspect" => inspect(path),
        [cmd, path] if cmd == "replay" => replay(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
