//! Table I — motion identification accuracy, LOS vs. NLOS antenna placement.
//!
//! The paper runs 3 groups of 13 strokes × 20 repetitions (780 motions) per
//! scenario and finds NLOS (antenna behind the board) *beats* LOS (antenna
//! on the ceiling) — the writer's arm crosses the LOS reader–tag paths and
//! injects noise.

use experiments::report::{print_table, rate};
use experiments::{AntennaPlacement, Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let user = UserProfile::average();
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for (name, placement) in [
        ("LOS", AntennaPlacement::Los),
        ("NLOS", AntennaPlacement::Nlos),
    ] {
        let bench = Bench::calibrate(
            Deployment::build(
                DeploymentSpec {
                    placement,
                    ..DeploymentSpec::default()
                },
                42,
            ),
            RfipadConfig::default(),
            1,
        );
        let mut cells = vec![name.to_string()];
        let mut total_exact = 0usize;
        let mut total_trials = 0usize;
        for group in 0..3u64 {
            let batch = bench.run_motion_batch(&user, reps, 1000 + group * 7919);
            cells.push(rate(batch.accuracy()));
            total_exact += batch.exact;
            total_trials += batch.trials;
        }
        let avg = total_exact as f64 / total_trials as f64;
        cells.push(rate(avg));
        summary.push((name, avg, total_trials));
        rows.push(cells);
    }
    print_table(
        &format!(
            "Table I — accuracy of motion identification ({} motions per scenario)",
            13 * reps * 3
        ),
        &["case", "group 1", "group 2", "group 3", "average"],
        &rows,
    );
    println!(
        "\nPaper: LOS 0.88, NLOS 0.94. Shape check: NLOS beats LOS (the arm disrupts\n\
         LOS reader–tag paths), both in the high-80s/low-90s."
    );
    let los = summary.iter().find(|s| s.0 == "LOS").unwrap().1;
    let nlos = summary.iter().find(|s| s.0 == "NLOS").unwrap().1;
    println!(
        "measured: LOS {los:.3}, NLOS {nlos:.3} — NLOS advantage {}",
        if nlos > los {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
}
