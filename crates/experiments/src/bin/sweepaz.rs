//! Letter recognition sweep: 26 letters x N seeds.
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::letters::ALPHABET;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut total_ok = 0usize;
    let mut total = 0usize;
    for letter in ALPHABET {
        let mut ok = 0;
        let mut wrong: Vec<String> = Vec::new();
        for seed in 0..n {
            let t = bench.run_letter_trial(letter, &user, 3000 + seed * 97 + letter as u64);
            if t.correct() {
                ok += 1;
            } else {
                wrong.push(format!(
                    "{:?}[{}]",
                    t.result.letter,
                    t.result
                        .strokes
                        .iter()
                        .map(|s| s.stroke.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
        }
        total_ok += ok as usize;
        total += n as usize;
        println!("{letter}: {ok}/{n} {}", wrong.join(" "));
    }
    println!(
        "TOTAL {total_ok}/{total} = {:.3}",
        total_ok as f64 / total as f64
    );
}
