//! Letter confusion analysis: which letters get mistaken for which.
//!
//! The paper reports only per-letter accuracy (Fig. 23); this companion
//! experiment prints the confusion structure, which exposes *why* the
//! weak letters are weak (e.g. W's steep arms reading as bars, bowl/stem
//! letters trading places).

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::letters::ALPHABET;
use hand_kinematics::user::UserProfile;
use rfipad::metrics::ConfusionMatrix;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut jobs = Vec::with_capacity(ALPHABET.len() * reps);
    for letter in ALPHABET {
        for rep in 0..reps {
            jobs.push((letter, 2800 + rep as u64 * 101 + letter as u64));
        }
    }
    let mut matrix = ConfusionMatrix::new();
    // Trials fan out over worker threads; recording in job order keeps the
    // matrix identical to a serial pass.
    for trial in bench.run_letter_trials(&jobs, &user) {
        let predicted = trial
            .result
            .letter
            .map(|c| c.to_string())
            .unwrap_or_else(|| "∅".to_string());
        matrix.record(trial.truth.to_string(), predicted);
    }

    println!("== Letter confusion ({} sessions per letter) ==", reps);
    println!("overall accuracy: {:.3}", matrix.accuracy());
    println!("\nconfusions (truth → predicted : count):");
    let mut rows: Vec<(String, String, u64)> = Vec::new();
    for truth in matrix.truth_labels() {
        for predicted in ALPHABET
            .iter()
            .map(|c| c.to_string())
            .chain(std::iter::once("∅".to_string()))
        {
            if truth != predicted {
                let n = matrix.count(&truth, &predicted);
                if n > 0 {
                    rows.push((truth.clone(), predicted, n));
                }
            }
        }
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.2));
    for (truth, predicted, n) in &rows {
        println!("  {truth} → {predicted} : {n}");
    }
    if rows.is_empty() {
        println!("  (none at this repetition count)");
    }
    println!(
        "\n∅ = no grammar match. Expected structure: W trades with M/zig-zag\n\
         readings, bowl letters (B/P/R/D) trade among themselves, and the\n\
         positional disambiguation keeps D/P, O/S, V/X apart."
    );
}
