//! Regenerates the entire evaluation in one command:
//! `cargo run --release -p experiments --bin run_all [-- quick] [-- --jobs N]`.
//!
//! Spawns every table/figure binary (they are all seeded and deterministic)
//! and prints a pass/fail summary in the fixed roster order. With `quick`,
//! each binary runs at reduced repetitions for a fast smoke pass. With
//! `--jobs N`, up to `N` binaries run concurrently; because every binary is
//! seeded, its output is independent of what else is running, so the
//! summary is identical to a serial pass — only the wall clock changes.
//! `--jobs 0` picks the machine's available parallelism.

use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const EXPERIMENTS: &[(&str, Option<&str>)] = &[
    ("fig02_observations", None),
    ("fig03_theory", None),
    ("fig04_tag_diversity", None),
    ("fig05_deviation_bias", None),
    ("fig06_unwrap", None),
    ("fig07_graymap", None),
    ("fig08_phase_trends", None),
    ("fig09_letter_h", None),
    ("fig11_pair_interference", None),
    ("fig12_array_interference", None),
    ("table1_los_nlos", Some("20")),
    ("fig16_environments", Some("30")),
    ("fig17_tx_power", Some("30")),
    ("fig18_angle", Some("10")),
    ("fig19_distance", Some("30")),
    ("fig20_users", Some("20")),
    ("fig21_time_cdf", Some("25")),
    ("fig22_segmentation", Some("30")),
    ("fig23_letters", Some("15")),
    ("fig24_latency", Some("50")),
    ("fig25_trajectory", None),
    ("coexistence", None),
    ("two_pads", None),
    ("hopping", Some("10")),
    ("ablation_direction", Some("15")),
    ("resilience", Some("15")),
    ("letters_confusion", Some("10")),
];

/// Outcome of one experiment binary.
struct Outcome {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn parse_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let requested = if let Some(v) = a.strip_prefix("--jobs=") {
            v.parse::<usize>().ok()
        } else if a == "--jobs" {
            args.get(i + 1).and_then(|v| v.parse::<usize>().ok())
        } else {
            continue;
        };
        let n = requested.unwrap_or_else(|| {
            obs::error!("--jobs expects a number (e.g. --jobs 4)");
            std::process::exit(2);
        });
        if n == 0 {
            return std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
        }
        return n;
    }
    1
}

fn run_one(name: &'static str, reps: Option<&str>, quick: bool) -> Outcome {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();
    let mut cmd = Command::new(exe_dir.join(name));
    if let Some(r) = reps {
        let reps_value = if quick {
            "3".to_string()
        } else {
            r.to_string()
        };
        cmd.arg(reps_value);
    }
    match cmd.output() {
        Ok(out) if out.status.success() => Outcome {
            name,
            ok: true,
            detail: String::new(),
        },
        Ok(out) => Outcome {
            name,
            ok: false,
            detail: format!(
                "exit {:?}: {}",
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            ),
        },
        Err(e) => Outcome {
            name,
            ok: false,
            detail: format!("failed to launch: {e}"),
        },
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let jobs = parse_jobs().min(EXPERIMENTS.len()).max(1);

    if jobs > 1 {
        println!(
            "running {} experiments on {jobs} workers …",
            EXPERIMENTS.len()
        );
    }

    // Fan the roster out over `jobs` workers via an atomic cursor and store
    // results by roster index so the report order never depends on timing.
    let slots: Vec<Mutex<Option<Outcome>>> = EXPERIMENTS.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((name, reps)) = EXPERIMENTS.get(i) else {
                    break;
                };
                if jobs == 1 {
                    print!("running {name:<24} … ");
                    use std::io::Write;
                    let _ = std::io::stdout().flush();
                }
                let outcome = run_one(name, *reps, quick);
                if jobs == 1 {
                    println!("{}", if outcome.ok { "ok" } else { "FAILED" });
                }
                *slots[i].lock().expect("slot lock") = Some(outcome);
            });
        }
    });

    let outcomes: Vec<Outcome> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect();

    if jobs > 1 {
        for o in &outcomes {
            println!("{:<24} {}", o.name, if o.ok { "ok" } else { "FAILED" });
        }
    }

    let failures: Vec<&Outcome> = outcomes.iter().filter(|o| !o.ok).collect();
    println!(
        "\n{} experiments, {} failed{}",
        EXPERIMENTS.len(),
        failures.len(),
        if quick { " (quick mode)" } else { "" }
    );
    for o in &failures {
        let tail: String = o
            .detail
            .lines()
            .rev()
            .take(3)
            .collect::<Vec<_>>()
            .join(" | ");
        println!("  {}: {tail}", o.name);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    println!("\nFull outputs are printed by each binary; EXPERIMENTS.md records the\ncanonical paper-vs-measured comparison.");
}
