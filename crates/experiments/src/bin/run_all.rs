//! Regenerates the entire evaluation in one command:
//! `cargo run --release -p experiments --bin run_all [-- quick]`.
//!
//! Spawns every table/figure binary in sequence (they are all seeded and
//! deterministic) and prints a pass/fail summary. With `quick`, each
//! binary runs at reduced repetitions for a fast smoke pass.

use std::process::Command;

const EXPERIMENTS: &[(&str, Option<&str>)] = &[
    ("fig02_observations", None),
    ("fig03_theory", None),
    ("fig04_tag_diversity", None),
    ("fig05_deviation_bias", None),
    ("fig06_unwrap", None),
    ("fig07_graymap", None),
    ("fig08_phase_trends", None),
    ("fig09_letter_h", None),
    ("fig11_pair_interference", None),
    ("fig12_array_interference", None),
    ("table1_los_nlos", Some("20")),
    ("fig16_environments", Some("30")),
    ("fig17_tx_power", Some("30")),
    ("fig18_angle", Some("10")),
    ("fig19_distance", Some("30")),
    ("fig20_users", Some("20")),
    ("fig21_time_cdf", Some("25")),
    ("fig22_segmentation", Some("30")),
    ("fig23_letters", Some("15")),
    ("fig24_latency", Some("50")),
    ("fig25_trajectory", None),
    ("coexistence", None),
    ("two_pads", None),
    ("hopping", Some("10")),
    ("ablation_direction", Some("15")),
    ("resilience", Some("15")),
    ("letters_confusion", Some("10")),
];

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .to_path_buf();

    let mut failures = Vec::new();
    for (name, reps) in EXPERIMENTS {
        let mut cmd = Command::new(exe_dir.join(name));
        if let Some(r) = reps {
            let reps_value = if quick { "3".to_string() } else { (*r).to_string() };
            cmd.arg(reps_value);
        }
        print!("running {name:<24} … ");
        match cmd.output() {
            Ok(out) if out.status.success() => println!("ok"),
            Ok(out) => {
                println!("FAILED (exit {:?})", out.status.code());
                failures.push((*name, String::from_utf8_lossy(&out.stderr).to_string()));
            }
            Err(e) => {
                println!("FAILED to launch: {e}");
                failures.push((*name, e.to_string()));
            }
        }
    }

    println!(
        "\n{} experiments, {} failed{}",
        EXPERIMENTS.len(),
        failures.len(),
        if quick { " (quick mode)" } else { "" }
    );
    for (name, err) in &failures {
        let tail: String = err.lines().rev().take(3).collect::<Vec<_>>().join(" | ");
        println!("  {name}: {tail}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    println!("\nFull outputs are printed by each binary; EXPERIMENTS.md records the\ncanonical paper-vs-measured comparison.");
}
