//! Fig. 8 — symmetry classes of per-tag phase trends during one pass.
//!
//! The paper shows that, unlike RSS, the phase profile a tag sees while the
//! hand passes can be monotone, axially symmetric, or circularly symmetric
//! depending on geometry — which is why the direction estimator uses RSS
//! troughs instead. We sweep the hand across the plate and report a simple
//! symmetry classification of several tags' suppressed phase trends.

use experiments::report::print_table;
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{PlacedStroke, Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::tags::TagId;
use rfipad::RfipadConfig;

fn main() {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        8,
    );
    let user = UserProfile::average();
    let writer = hand_kinematics::writer::Writer::new(bench.deployment.pad, user.clone());
    let mut rng = StdRng::seed_from_u64(8);
    // Slow horizontal sweep across the middle row.
    let placement = PlacedStroke::new(Stroke::new(StrokeShape::HLine), (0.5, 0.02), (0.5, 0.98));
    let session = writer.write_stroke(placement, 1.0, &mut rng);
    let observations = bench.record_session(&session, &user, &mut rng);
    let streams = bench.recognizer.streams(&observations);
    let (t0, t1) = (session.strokes[0].start, session.strokes[0].end);

    // Tags at different relative positions to the sweep line.
    let samples = [
        (TagId(10), "row 2, col 0 (on the path, start)"),
        (TagId(12), "row 2, col 2 (on the path, centre)"),
        (TagId(2), "row 0, col 2 (one row above path)"),
        (TagId(22), "row 4, col 2 (two rows below path)"),
    ];
    let mut rows = Vec::new();
    for (id, where_) in samples {
        let Some(series) = streams.phase(id) else {
            continue;
        };
        let part = series.slice_time(t0, t1);
        let values = part.values();
        if values.len() < 8 {
            continue;
        }
        rows.push(vec![
            id.to_string(),
            where_.to_string(),
            classify_symmetry(values).to_string(),
            format!(
                "{:.2}",
                values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - values.iter().cloned().fold(f64::INFINITY, f64::min)
            ),
        ]);
    }
    print_table(
        "Fig. 8 — phase-trend symmetry while the hand sweeps the middle row",
        &["tag", "position vs. path", "trend class", "swing (rad)"],
        &rows,
    );
    println!(
        "\nInconsistent per-tag phase patterns (monotone / symmetric / oscillating)\n\
         make phase unusable for tag ordering — the paper's argument for RSS-based\n\
         direction estimation."
    );
}

/// Rough symmetry classification of a trend.
fn classify_symmetry(values: &[f64]) -> &'static str {
    let n = values.len();
    let first = values[..n / 3].iter().sum::<f64>() / (n / 3) as f64;
    let mid = values[n / 3..2 * n / 3].iter().sum::<f64>() / (n / 3).max(1) as f64;
    let last = values[2 * n / 3..].iter().sum::<f64>() / (n - 2 * n / 3) as f64;
    let swing = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - values.iter().cloned().fold(f64::INFINITY, f64::min);
    // Count direction changes for oscillation.
    let mut changes = 0;
    let mut last_sign = 0.0f64;
    for w in values.windows(2) {
        let d: f64 = w[1] - w[0];
        if d.abs() > 0.05 * swing.max(1e-9) {
            if last_sign != 0.0 && d.signum() != last_sign {
                changes += 1;
            }
            last_sign = d.signum();
        }
    }
    if changes >= 4 {
        "circular-symmetric (oscillating)"
    } else if (first - last).abs() < 0.35 * swing && (mid - first).abs() > 0.25 * swing {
        "axially symmetric"
    } else {
        "monotone-ish"
    }
}
