//! Fig. 24 — response time per motion category, measured on the online
//! pipeline.
//!
//! The paper streams 50 records per motion through its C# software on a
//! 2013 laptop and sees responses below 0.1 s. We push the report stream of
//! each trial through [`rfipad::OnlinePipeline`] and record the compute
//! time of each stroke report.

use experiments::report::print_table;
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfipad::{OnlinePipeline, PipelineEvent, RfipadConfig};
use sigproc::stats;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for stroke in Stroke::all_thirteen().into_iter().filter(|s| !s.reversed) {
        let mut responses = Vec::new();
        for rep in 0..reps {
            let trial = bench.run_stroke_trial(
                stroke,
                &user,
                2400 + rep as u64 * 37 + stroke.shape.motion_number() as u64,
            );
            let mut pipeline = OnlinePipeline::builder()
                .recognizer(bench.recognizer.clone())
                .letter_gap_s(1.5)
                .build()
                .expect("valid gap");
            let mut rng = StdRng::seed_from_u64(1);
            let _ = &mut rng;
            for obs in &trial.reports {
                for event in pipeline.push(*obs) {
                    if let PipelineEvent::StrokeDetected {
                        response_time_s, ..
                    } = event
                    {
                        responses.push(response_time_s);
                    }
                }
            }
            for event in pipeline.finish() {
                if let PipelineEvent::StrokeDetected {
                    response_time_s, ..
                } = event
                {
                    responses.push(response_time_s);
                }
            }
        }
        if responses.is_empty() {
            continue;
        }
        rows.push(vec![
            format!("#{} ({})", stroke.shape.motion_number(), stroke.shape),
            format!("{:.1}", stats::mean(&responses) * 1000.0),
            format!("{:.1}", stats::percentile(&responses, 50.0) * 1000.0),
            format!("{:.1}", stats::max(&responses) * 1000.0),
            responses.len().to_string(),
        ]);
    }
    print_table(
        &format!("Fig. 24 — online response time per motion ({reps} records each)"),
        &["motion", "mean (ms)", "median (ms)", "max (ms)", "reports"],
        &rows,
    );
    println!(
        "\nPaper: all responses < 0.1 s with per-motion spread < 0.035 s — fast\n\
         enough for online interaction. Shape check: mean responses in the\n\
         millisecond range."
    );
}
