//! Fig. 23 — letter recognition accuracy over all 26 letters, grouped by
//! stroke count as in the paper (group 1 = {C, I} … group 4 = {E, M, W}).
//!
//! The paper reports ≈91% average accuracy.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::letters::{letters_with_stroke_count, ALPHABET};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;
use std::collections::HashMap;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut jobs = Vec::with_capacity(ALPHABET.len() * reps);
    for letter in ALPHABET {
        for rep in 0..reps {
            jobs.push((letter, 2300 + rep as u64 * 101 + letter as u64 * 7));
        }
    }
    let trials = bench.run_letter_trials(&jobs, &user);
    let mut per_letter: HashMap<char, (usize, usize)> = HashMap::new();
    for trial in &trials {
        let entry = per_letter.entry(trial.truth).or_insert((0, reps));
        if trial.correct() {
            entry.0 += 1;
        }
    }
    for letter in ALPHABET {
        per_letter.entry(letter).or_insert((0, reps));
    }

    let mut rows = Vec::new();
    for letter in ALPHABET {
        let (ok, n) = per_letter[&letter];
        rows.push(vec![
            letter.to_string(),
            hand_kinematics::letters::stroke_count(letter)
                .unwrap()
                .to_string(),
            rate(ok as f64 / n as f64),
        ]);
    }
    print_table(
        &format!("Fig. 23 — letter recognition accuracy ({reps} sessions per letter)"),
        &["letter", "strokes", "accuracy"],
        &rows,
    );

    let mut group_rows = Vec::new();
    let mut total_ok = 0usize;
    let mut total_n = 0usize;
    for group in 1..=4usize {
        let members = letters_with_stroke_count(group);
        let (ok, n) = members.iter().fold((0usize, 0usize), |(a, b), c| {
            let (ok, n) = per_letter[c];
            (a + ok, b + n)
        });
        total_ok += ok;
        total_n += n;
        group_rows.push(vec![
            format!("group #{group}"),
            members.iter().collect::<String>(),
            rate(ok as f64 / n.max(1) as f64),
        ]);
    }
    print_table(
        "Fig. 23 — by stroke-count group",
        &["group", "letters", "accuracy"],
        &group_rows,
    );
    println!(
        "\naverage letter accuracy: {:.3} (paper: ≈0.91)",
        total_ok as f64 / total_n as f64
    );
}
