//! Fig. 19 — error rates vs. reader-to-tag distance.
//!
//! The paper varies the antenna-to-plate distance from 20 to 80 cm: FPR/FNR
//! are ≈5% at 20 cm and grow with distance (weaker forward link, more
//! environmental interference); it recommends staying within 50 cm.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for distance_cm in [20.0, 50.0, 80.0] {
        let bench = Bench::calibrate(
            Deployment::build(
                DeploymentSpec {
                    distance_m: distance_cm / 100.0,
                    ..DeploymentSpec::default()
                },
                42,
            ),
            RfipadConfig::default(),
            1,
        );
        let batch = bench.run_motion_batch(&user, reps, 1900);
        rows.push(vec![
            format!("{distance_cm:.0}"),
            rate(batch.counts.fpr()),
            rate(batch.counts.fnr()),
            rate(batch.accuracy()),
        ]);
    }
    print_table(
        &format!(
            "Fig. 19 — error rates vs. reader-to-tag distance ({} motions per distance)",
            13 * reps
        ),
        &["distance (cm)", "FPR", "FNR", "accuracy"],
        &rows,
    );
    println!(
        "\nPaper: ≈5% at 20 cm, increasing with distance; keep the reader within\n\
         50 cm. Shape check: error rates grow down the table."
    );
}
