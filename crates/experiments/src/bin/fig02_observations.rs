//! Fig. 2 — Doppler, phase, and RSS over time: static vs. hand movement.
//!
//! Reproduces the paper's preliminary observation: phase and RSS separate
//! the two cases clearly while Doppler is lost in noise.

use experiments::report::print_table;
use experiments::{Deployment, DeploymentSpec};
use hand_kinematics::pad::PadFrame;
use hand_kinematics::trajectory::{HandTarget, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::tags::TagId;
use rfid_gen2::reader::Gen2Reader;
use sigproc::stats;

fn main() {
    let deployment = Deployment::build(DeploymentSpec::default(), 42);
    let reader = Gen2Reader::default();
    let watched = TagId(12); // centre tag
    let duration = 20.0;

    // Static case.
    let mut rng = StdRng::seed_from_u64(1);
    let static_run = reader.run(&deployment.scene, &[], 0.0, duration, &mut rng);

    // Hand-movement case: the hand sweeps back and forth over the plate.
    let pad = PadFrame::over_array(&deployment.array, 0.03);
    let mut traj = Trajectory::new();
    let mut t = 0.0;
    let mut left_to_right = true;
    while t < duration {
        let (a, b) = if left_to_right {
            (0.0, 1.0)
        } else {
            (1.0, 0.0)
        };
        traj.push_segment(
            t,
            2.5,
            vec![pad.write_point(0.5, a), pad.write_point(0.5, b)],
        );
        left_to_right = !left_to_right;
        t += 2.5;
    }
    let hand = HandTarget::new(traj, 0.02);
    let mut rng = StdRng::seed_from_u64(2);
    let moving_run = reader.run(&deployment.scene, &[&hand], 0.0, duration, &mut rng);

    let collect = |run: &rfid_gen2::reader::ReaderRun| {
        let obs: Vec<_> = run
            .events
            .iter()
            .filter(|e| e.tag == watched)
            .copied()
            .collect();
        let phases: Vec<f64> = obs.iter().map(|o| o.phase).collect();
        let rss: Vec<f64> = obs.iter().map(|o| o.rss_dbm).collect();
        let doppler: Vec<f64> = obs.iter().map(|o| o.doppler_hz).collect();
        (phases, rss, doppler)
    };
    let (ph_s, rss_s, dop_s) = collect(&static_run);
    let (ph_m, rss_m, dop_m) = collect(&moving_run);

    print_table(
        "Fig. 2 — channel-parameter variation over 20 s, tag-0012 (std dev)",
        &["parameter", "static", "hand movement", "separable?"],
        &[
            vec![
                "Doppler (Hz)".into(),
                format!("{:.2}", stats::std_dev(&dop_s)),
                format!("{:.2}", stats::std_dev(&dop_m)),
                sep_label(stats::std_dev(&dop_s), stats::std_dev(&dop_m)),
            ],
            vec![
                "Phase (rad)".into(),
                format!("{:.3}", stats::std_dev(&ph_s)),
                format!("{:.3}", stats::std_dev(&ph_m)),
                sep_label(stats::std_dev(&ph_s), stats::std_dev(&ph_m)),
            ],
            vec![
                "RSS (dB)".into(),
                format!("{:.2}", stats::std_dev(&rss_s)),
                format!("{:.2}", stats::std_dev(&rss_m)),
                sep_label(stats::std_dev(&rss_s), stats::std_dev(&rss_m)),
            ],
        ],
    );
    println!(
        "\nPaper's observation: Doppler indistinguishable between cases; phase and RSS\n\
         show distinct variation during hand movement. (Ratios above ≥3 count as\n\
         separable.)"
    );
}

fn sep_label(quiet: f64, moving: f64) -> String {
    if moving > 3.0 * quiet.max(1e-9) {
        "yes".into()
    } else {
        "no (noisy)".into()
    }
}
