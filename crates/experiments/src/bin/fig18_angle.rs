//! Fig. 18 — recognition accuracy vs. the angle between the antenna plane
//! and the tag panel.
//!
//! The paper tilts the antenna to −30°, 0°, 30°, 45° and has a volunteer
//! draw `−` and `|` over different rows and columns: accuracy peaks at 0°
//! and falls as the tilt grows.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{PlacedStroke, Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for angle in [-30.0, 0.0, 30.0, 45.0] {
        let bench = Bench::calibrate(
            Deployment::build(
                DeploymentSpec {
                    angle_deg: angle,
                    ..DeploymentSpec::default()
                },
                42,
            ),
            RfipadConfig::default(),
            1,
        );
        let writer = Writer::new(bench.deployment.pad, user.clone());
        let mut correct = 0usize;
        let mut total = 0usize;
        // `−` over each row and `|` over each column, `reps` times each.
        for rep in 0..reps {
            for lane in 0..5usize {
                let frac = lane as f64 / 4.0;
                for (shape, placement) in [
                    (
                        StrokeShape::HLine,
                        PlacedStroke::new(
                            Stroke::new(StrokeShape::HLine),
                            (frac, 0.05),
                            (frac, 0.95),
                        ),
                    ),
                    (
                        StrokeShape::VLine,
                        PlacedStroke::new(
                            Stroke::new(StrokeShape::VLine),
                            (0.05, frac),
                            (0.95, frac),
                        ),
                    ),
                ] {
                    let mut rng = StdRng::seed_from_u64(
                        1800 + rep as u64 * 101 + lane as u64 * 13 + shape as u64,
                    );
                    let session = writer.write_stroke(placement, 1.0, &mut rng);
                    let observations = bench.record_session(&session, &user, &mut rng);
                    let result = bench.recognizer.recognize_session(&observations);
                    total += 1;
                    if result.strokes.len() == 1 && result.strokes[0].stroke.shape == shape {
                        correct += 1;
                    }
                }
            }
        }
        rows.push(vec![
            format!("{angle:+.0}°"),
            rate(correct as f64 / total as f64),
            total.to_string(),
        ]);
    }
    print_table(
        "Fig. 18 — accuracy vs. reader-to-tag angle (− and | over all rows/columns)",
        &["angle", "accuracy", "motions"],
        &rows,
    );
    println!(
        "\nPaper: best at 0°, degrading as the tilt grows. Shape check: the 0° row\n\
         should hold the maximum."
    );
}
