//! Resilience to environment changes — the paper's §I claim that RFIPad
//! exhibits "resiliency to environment changes".
//!
//! The pad is calibrated in one environment; then the room changes (a
//! cabinet is wheeled in next to the pad — a new strong scatterer). We
//! measure accuracy (a) before the change, (b) after the change with the
//! *stale* calibration, and (c) after re-calibrating — quantifying both
//! the resilience and the value of an occasional re-calibration.

use experiments::report::{print_table, rate};
use experiments::trial::Bench;
use experiments::{Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rf_sim::environment::{Environment, Scatterer};
use rf_sim::geometry::Vec3;
use rf_sim::scene::Scene;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let user = UserProfile::average();
    let config = RfipadConfig::default();

    // (a) calibrate and measure in the original room.
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        config.clone(),
        1,
    );
    let before = bench.run_motion_batch(&user, reps, 6000);

    // The room changes: a metal cabinet appears 80 cm from the pad.
    let mut scatterers = bench.deployment.scene.environment().scatterers().to_vec();
    scatterers.push(Scatterer {
        position: Vec3::new(0.8, -0.3, 0.3),
        rcs_m2: 1.4,
    });
    let changed_env = Environment::new("location 1 + cabinet", scatterers, 0.02, 0.3);
    let changed_scene = Scene::new(
        *bench.deployment.scene.antenna(),
        bench.deployment.scene.tags().to_vec(),
        changed_env,
        bench.deployment.scene.config().clone(),
    );

    // (b) stale calibration in the changed room.
    let mut changed_deployment = bench.deployment.clone();
    changed_deployment.scene = changed_scene;
    let stale_bench = Bench {
        deployment: changed_deployment.clone(),
        reader: bench.reader.clone(),
        recognizer: bench.recognizer.clone(),
    };
    let stale = stale_bench.run_motion_batch(&user, reps, 6000);

    // (c) re-calibrated in the changed room.
    let fresh_bench = Bench::calibrate(changed_deployment, config, 2);
    let fresh = fresh_bench.run_motion_batch(&user, reps, 6000);

    print_table(
        &format!(
            "Resilience to environment change ({} motions per row)",
            13 * reps
        ),
        &["condition", "accuracy", "FPR", "FNR"],
        &[
            vec![
                "original room".into(),
                rate(before.accuracy()),
                rate(before.counts.fpr()),
                rate(before.counts.fnr()),
            ],
            vec![
                "cabinet moved in, stale calibration".into(),
                rate(stale.accuracy()),
                rate(stale.counts.fpr()),
                rate(stale.counts.fnr()),
            ],
            vec![
                "cabinet moved in, re-calibrated".into(),
                rate(fresh.accuracy()),
                rate(fresh.counts.fpr()),
                rate(fresh.counts.fnr()),
            ],
        ],
    );
    println!(
        "\nThe stale row quantifies the paper's resilience claim (no training, and\n\
         calibration is only a few seconds of static reads when you do refresh it)."
    );
}
