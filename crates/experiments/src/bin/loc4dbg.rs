use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;
fn main() {
    let bench = Bench::calibrate(
        Deployment::build(
            DeploymentSpec {
                location: 4,
                ..DeploymentSpec::default()
            },
            46,
        ),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    for stroke in Stroke::all_thirteen() {
        let mut wrong = Vec::new();
        let mut ok = 0;
        for rep in 0..6u64 {
            let t = bench.run_stroke_trial(
                stroke,
                &user,
                7000 + rep * 31 + stroke.shape.motion_number() as u64,
            );
            if t.correct() {
                ok += 1;
            } else {
                wrong.push(
                    t.result
                        .strokes
                        .iter()
                        .map(|s| s.stroke.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                );
            }
        }
        println!("{:8} ok {ok}/6 wrong: {:?}", stroke.to_string(), wrong);
    }
}
