//! Fig. 22 — stroke segmentation quality over five representative letters.
//!
//! L and T (2 strokes), Z and H (3), E (4): the paper reports underfill
//! always below 0.07, insertion rate growing with stroke count, and the
//! per-letter stroke/letter recognition accuracy.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for letter in ['L', 'T', 'Z', 'H', 'E'] {
        let mut insertions = 0usize;
        let mut underfills = 0usize;
        let mut truth_strokes = 0usize;
        let mut sessions_with_insertion = 0usize;
        let mut stroke_acc_sum = 0.0;
        let mut letters_ok = 0usize;
        for rep in 0..reps {
            let trial =
                bench.run_letter_trial(letter, &user, 2200 + rep as u64 * 131 + letter as u64);
            let seg = trial.segmentation_outcome();
            insertions += seg.insertions;
            underfills += seg.underfills;
            truth_strokes += seg.truth_count;
            if seg.insertions > 0 {
                sessions_with_insertion += 1;
            }
            stroke_acc_sum += trial.stroke_accuracy();
            if trial.correct() {
                letters_ok += 1;
            }
        }
        rows.push(vec![
            letter.to_string(),
            hand_kinematics::letters::stroke_count(letter)
                .unwrap()
                .to_string(),
            rate(sessions_with_insertion as f64 / reps as f64),
            rate(underfills as f64 / truth_strokes.max(1) as f64),
            rate(stroke_acc_sum / reps as f64),
            rate(letters_ok as f64 / reps as f64),
            insertions.to_string(),
        ]);
    }
    print_table(
        &format!("Fig. 22 — segmentation & recognition over L/T/Z/H/E ({reps} sessions each)"),
        &[
            "letter",
            "strokes",
            "insertion rate",
            "underfill rate",
            "stroke acc",
            "letter acc",
            "raw insertions",
        ],
        &rows,
    );
    println!(
        "\nPaper: underfill < 0.07 everywhere; insertion rate grows with the number\n\
         of strokes (more repositioning periods to mis-detect in)."
    );
}
