//! End-to-end smoke check over the default deployment.
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut stroke_ok = 0;
    let mut shape_ok = 0;
    for (i, stroke) in Stroke::all_thirteen().into_iter().enumerate() {
        let trial = bench.run_stroke_trial(stroke, &user, 100 + i as u64);
        let got: Vec<String> = trial
            .result
            .strokes
            .iter()
            .map(|s| s.stroke.to_string())
            .collect();
        if trial.correct() {
            stroke_ok += 1;
        }
        if trial.shape_correct() {
            shape_ok += 1;
        }
        println!(
            "truth {:8} -> {:?} correct={}",
            stroke.to_string(),
            got,
            trial.correct()
        );
    }
    println!("strokes: {stroke_ok}/13 exact, {shape_ok}/13 shape");
    let mut letter_ok = 0;
    let letters = ['I', 'C', 'T', 'L', 'V', 'H', 'Z', 'N', 'E', 'O', 'D', 'P'];
    for (i, letter) in letters.iter().enumerate() {
        let trial = bench.run_letter_trial(*letter, &user, 500 + i as u64);
        if trial.correct() {
            letter_ok += 1;
        }
        println!(
            "letter {letter} -> {:?} (strokes {:?})",
            trial.result.letter,
            trial
                .result
                .strokes
                .iter()
                .map(|s| s.stroke.to_string())
                .collect::<Vec<_>>()
        );
    }
    println!("letters: {letter_ok}/{}", letters.len());
}
