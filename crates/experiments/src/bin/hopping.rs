//! Frequency hopping vs. fixed carrier — why the paper runs on a fixed
//! 922.38 MHz channel.
//!
//! FCC-domain readers must hop across 902–928 MHz; every hop shifts each
//! tag's reported phase by `4πd·Δf/c`, which the accumulative-difference
//! image counts as motion. This experiment measures motion accuracy with
//! the paper's fixed carrier and with an FCC 50-channel plan, using the
//! same recognizer, and quantifies the cost of hopping for phase-based
//! sensing.

use experiments::report::{print_table, rate};
use experiments::trial::Bench;
use experiments::{Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rf_sim::scene::{HoppingPlan, Scene, SceneConfig};
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for (name, hopping) in [
        ("fixed 922.38 MHz (paper)", None),
        ("FCC 50-channel hopping", Some(HoppingPlan::fcc())),
    ] {
        let base = Deployment::build(DeploymentSpec::default(), 42);
        let scene = Scene::new(
            *base.scene.antenna(),
            base.scene.tags().to_vec(),
            base.scene.environment().clone(),
            SceneConfig {
                hopping,
                ..base.scene.config().clone()
            },
        );
        let mut deployment = base;
        deployment.scene = scene;
        let bench = Bench::calibrate(deployment, RfipadConfig::default(), 1);
        let batch = bench.run_motion_batch(&user, reps, 7000);
        rows.push(vec![
            name.to_string(),
            rate(batch.accuracy()),
            rate(batch.counts.fpr()),
            rate(batch.counts.fnr()),
        ]);
    }
    print_table(
        &format!(
            "Fixed carrier vs. FCC hopping ({} motions per row)",
            13 * reps
        ),
        &["carrier plan", "accuracy", "FPR", "FNR"],
        &rows,
    );
    println!(
        "\nHopping shifts every tag's phase at each dwell boundary, polluting the\n\
         accumulative-difference image. RFIPad as specified needs a fixed channel\n\
         (available in the Chinese band the paper used); FCC deployments would\n\
         need per-channel calibration or hop-aware unwrapping — future work the\n\
         paper does not address."
    );
}
