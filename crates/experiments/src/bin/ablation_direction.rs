//! Ablation: RSS-trough vs phase-based direction estimation.
//!
//! §III-B argues direction must come from RSS, because per-tag phase
//! trends are inconsistent (Fig. 8). This experiment quantifies the claim:
//! for each directional stroke, both estimators judge the travel direction
//! and are scored against ground truth.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let estimator = rfipad::direction::DirectionEstimator::new(RfipadConfig::default());
    let user = UserProfile::average();

    for location in [1usize, 4] {
        let bench = Bench::calibrate(
            Deployment::build(
                DeploymentSpec {
                    location,
                    ..DeploymentSpec::default()
                },
                42,
            ),
            RfipadConfig::default(),
            1,
        );
        let mut rows = Vec::new();
        let mut rss_total = (0usize, 0usize);
        let mut phase_total = (0usize, 0usize);
        for stroke in Stroke::all_thirteen()
            .into_iter()
            .filter(|s| s.shape.is_directional())
        {
            let mut rss_ok = 0usize;
            let mut phase_ok = 0usize;
            let mut n = 0usize;
            for rep in 0..reps {
                let trial = bench.run_stroke_trial(
                    stroke,
                    &user,
                    5000 + rep as u64 * 61
                        + stroke.shape.motion_number() as u64 * 7
                        + stroke.reversed as u64,
                );
                // Only score trials where the stroke was detected and shaped
                // correctly — we are isolating the direction decision.
                let Some(detected) = trial.result.strokes.first() else {
                    continue;
                };
                if detected.stroke.shape != stroke.shape {
                    continue;
                }
                let streams = bench.recognizer.streams(&trial.reports);
                let span = detected.span;
                let mut motion = detected.motion.clone();
                motion.shape = stroke.shape;
                let rss = estimator.estimate(
                    &motion,
                    &bench.deployment.layout,
                    &streams,
                    span.start,
                    span.end,
                );
                let phase = estimator.estimate_phase_based(
                    &motion,
                    &bench.deployment.layout,
                    &streams,
                    span.start,
                    span.end,
                );
                n += 1;
                if rss.stroke.reversed == stroke.reversed {
                    rss_ok += 1;
                }
                if phase.stroke.reversed == stroke.reversed {
                    phase_ok += 1;
                }
            }
            if n == 0 {
                continue;
            }
            rss_total = (rss_total.0 + rss_ok, rss_total.1 + n);
            phase_total = (phase_total.0 + phase_ok, phase_total.1 + n);
            rows.push(vec![
                stroke.to_string(),
                rate(rss_ok as f64 / n as f64),
                rate(phase_ok as f64 / n as f64),
                n.to_string(),
            ]);
        }
        print_table(
        &format!(
            "Ablation — direction accuracy at location {location}: RSS troughs (paper) vs phase-based"
        ),
        &["stroke", "RSS troughs", "phase-based", "scored"],
        &rows,
    );
        println!(
            "overall (location {location}): RSS {:.3} vs phase {:.3}",
            rss_total.0 as f64 / rss_total.1.max(1) as f64,
            phase_total.0 as f64 / phase_total.1.max(1) as f64,
        );
    }
    println!(
        "\nIn clean rooms both work; rich multipath (location 4) scrambles the\n\
         per-tag phase activity times while the RSS detuning troughs survive —\n\
         the §III-B argument for RSS-based direction."
    );
}
