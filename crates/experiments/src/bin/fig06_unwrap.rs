//! Fig. 6 — phase de-periodicity: a wrapped phase trend before and after
//! unwrapping.

use experiments::report::print_table;
use sigproc::unwrap::{unwrap_phase, wrap_phase};

fn main() {
    // A smooth physical phase trend that crosses several 2π boundaries,
    // like the example in the paper's Fig. 6.
    let true_phase: Vec<f64> = (0..100)
        .map(|i| {
            let t = i as f64 * 0.1;
            5.5 - 0.9 * t + 0.4 * (t * 1.3).sin()
        })
        .collect();
    let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_phase(p)).collect();
    let unwrapped = unwrap_phase(&wrapped);

    let jumps = |series: &[f64]| {
        series
            .windows(2)
            .filter(|w| (w[1] - w[0]).abs() > std::f64::consts::PI)
            .count()
    };
    let max_step = |series: &[f64]| {
        series
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max)
    };

    print_table(
        "Fig. 6 — phase de-periodicity",
        &["series", "2π discontinuities", "max step (rad)"],
        &[
            vec![
                "reported (wrapped)".into(),
                jumps(&wrapped).to_string(),
                format!("{:.2}", max_step(&wrapped)),
            ],
            vec![
                "after unwrapping".into(),
                jumps(&unwrapped).to_string(),
                format!("{:.2}", max_step(&unwrapped)),
            ],
        ],
    );

    // Reconstruction fidelity (up to the 2π offset of the first sample).
    let offset = unwrapped[0] - true_phase[0];
    let err = unwrapped
        .iter()
        .zip(&true_phase)
        .map(|(u, t)| (u - t - offset).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax reconstruction error vs. true phase: {err:.2e} rad");
    println!("The sudden 2π jumps disappear; the trend becomes smooth and continuous.");
}
