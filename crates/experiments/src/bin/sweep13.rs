//! Quick accuracy sweep: 13 strokes x N seeds.
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let mut total_ok = 0;
    let mut total = 0;
    for stroke in Stroke::all_thirteen() {
        let mut ok = 0;
        let mut shape_ok = 0;
        for seed in 0..n {
            let t = bench.run_stroke_trial(
                stroke,
                &user,
                1000 + seed * 131
                    + stroke.shape.motion_number() as u64 * 7
                    + stroke.reversed as u64,
            );
            if t.correct() {
                ok += 1;
            }
            if t.shape_correct() {
                shape_ok += 1;
            }
        }
        total_ok += ok;
        total += n;
        println!(
            "{:8}  exact {ok}/{n}  shape {shape_ok}/{n}",
            stroke.to_string()
        );
    }
    println!(
        "TOTAL {total_ok}/{total} = {:.2}",
        total_ok as f64 / total as f64
    );
}
