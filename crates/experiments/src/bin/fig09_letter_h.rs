//! Fig. 9 — phase, frame RMS, and Std(RMS) while a volunteer writes 'H'.
//!
//! The three strokes stand out as high-variance bursts and the adjustment
//! intervals between them stay near zero — the basis of segmentation.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        9,
    );
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('H', &user, 909);

    println!("== Fig. 9 — writing 'H': frame diagnostics ==");
    println!(
        "{:>6}  {:>8}  {:>9}  {:>7}",
        "t (s)", "rms", "std(rms)", "active"
    );
    for f in &trial.result.segmentation.frames {
        // Print a bar chart alongside the numbers.
        let bar_len = (f.rms * 2.0).min(40.0) as usize;
        println!(
            "{:>6.1}  {:>8.2}  {:>9.3}  {:>7}  {}",
            f.time,
            f.rms,
            f.window_std,
            if f.active { "STROKE" } else { "" },
            "#".repeat(bar_len)
        );
    }
    println!("\nground-truth strokes:");
    for (i, s) in trial.session.strokes.iter().enumerate() {
        println!(
            "  stroke {} ({}): {:.2}..{:.2} s",
            i + 1,
            s.stroke,
            s.start,
            s.end
        );
    }
    println!("detected spans:");
    for s in &trial.result.segmentation.spans {
        println!("  {:.2}..{:.2} s", s.start, s.end);
    }
    println!("threshold: {:.3}", trial.result.segmentation.threshold);
    println!("recognized letter: {:?}", trial.result.letter);
}
