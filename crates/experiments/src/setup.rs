//! Standard deployments: the paper's prototype geometry in all its
//! evaluation variants (LOS/NLOS, four lab locations, TX power, antenna
//! angle, reader distance, tag model).

use hand_kinematics::pad::PadFrame;
use rf_sim::antenna::ReaderAntenna;
use rf_sim::environment::Environment;
use rf_sim::geometry::Vec3;
use rf_sim::scene::{Scene, SceneConfig};
use rf_sim::tags::{TagArray, TagModel};
use rf_sim::units::{Dbi, Dbm};
use rfipad::ArrayLayout;
use serde::{Deserialize, Serialize};

/// Where the reader antenna sits relative to the tag plate (paper Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AntennaPlacement {
    /// On the ceiling, same side as the user's hand: hand and arm cross the
    /// reader–tag line-of-sight paths.
    Los,
    /// Behind the board: only reflections off the hand reach the tags'
    /// channels. The paper's recommended mode.
    Nlos,
}

/// A complete deployment specification. `Default` reproduces the paper's
/// reference setup: NLOS, 32 cm, 0° tilt, 30 dBm, Impinj-style Type B tags,
/// lab location 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Antenna placement (LOS/NLOS).
    pub placement: AntennaPlacement,
    /// Lab location `1..=4` (Fig. 15/16 multipath presets).
    pub location: usize,
    /// Reader transmit power in dBm (Fig. 17: 15–32.5).
    pub tx_power_dbm: f64,
    /// Antenna-to-plate distance in metres (Fig. 19: 0.2–0.8).
    pub distance_m: f64,
    /// Tilt between antenna plane and tag panel in degrees (Fig. 18:
    /// −30…45).
    pub angle_deg: f64,
    /// Tag design populating the array (Fig. 12: A–D).
    pub tag_model: TagModel,
    /// Array dimensions (paper: 5×5).
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Tag pitch in metres (paper: 6 cm).
    pub spacing_m: f64,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        Self {
            placement: AntennaPlacement::Nlos,
            location: 1,
            tx_power_dbm: 30.0,
            distance_m: 0.32,
            angle_deg: 0.0,
            tag_model: TagModel::TypeB,
            rows: 5,
            cols: 5,
            spacing_m: 0.06,
        }
    }
}

/// A built deployment: the physical scene plus the recognizer-facing
/// layout and writing pad.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The RF scene (antenna + tags + environment).
    pub scene: Scene,
    /// The physical array.
    pub array: TagArray,
    /// The logical layout the recognizer uses.
    pub layout: ArrayLayout,
    /// The writing surface for workload generation.
    pub pad: PadFrame,
    /// The spec this was built from.
    pub spec: DeploymentSpec,
}

impl Deployment {
    /// Builds the deployment. Tag hardware phase offsets θ_tag are drawn
    /// deterministically from `seed` so repeated builds are reproducible.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range spec values (location, rows/cols…).
    pub fn build(spec: DeploymentSpec, seed: u64) -> Deployment {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let array = TagArray::grid(
            spec.rows,
            spec.cols,
            spec.spacing_m,
            Vec3::ZERO,
            spec.tag_model,
            |_| rng.random_range(0.0..std::f64::consts::TAU),
        );
        let center = array.center();
        let d = spec.distance_m;
        let (mut position, mut boresight) = match spec.placement {
            AntennaPlacement::Los => {
                // Ceiling mount viewing the board at an angle (paper
                // Fig. 14): offset toward the user so reader–hand path
                // lengths actually vary as the hand moves.
                let position = Vec3::new(center.x, center.y - 0.3, 0.4);
                let boresight = (center - position).normalized();
                (position, boresight)
            }
            AntennaPlacement::Nlos => (Vec3::new(center.x, center.y, -d), Vec3::new(0.0, 0.0, 1.0)),
        };
        // Antenna tilt (Fig. 18): the antenna pivots on an arc around the
        // plate centre by `angle_deg` about the x (column) axis, keeping
        // its distance and aiming at the centre — the tags now see the
        // reader off their plate normal.
        let theta = spec.angle_deg.to_radians();
        if theta != 0.0 {
            let offset = position - center;
            let rotated = Vec3::new(
                offset.x,
                offset.y * theta.cos() - offset.z * theta.sin(),
                offset.y * theta.sin() + offset.z * theta.cos(),
            );
            position = center + rotated;
            boresight = (center - position).normalized();
        }
        let antenna = ReaderAntenna::new(position, boresight, Dbi(8.0));
        let scene = Scene::new(
            antenna,
            array.tags().to_vec(),
            Environment::office_location(spec.location),
            SceneConfig {
                tx_power: Dbm(spec.tx_power_dbm),
                ..SceneConfig::default()
            },
        );
        let layout = ArrayLayout::new(
            array.rows(),
            array.cols(),
            array.tags().iter().map(|t| t.id).collect(),
        );
        let pad = PadFrame::over_array(&array, 0.03);
        Deployment {
            scene,
            array,
            layout,
            pad,
            spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_paper_prototype() {
        let d = Deployment::build(DeploymentSpec::default(), 1);
        assert_eq!(d.array.tags().len(), 25);
        assert_eq!(d.layout.rows(), 5);
        // Antenna behind the plate.
        assert!(d.scene.antenna().position().z < 0.0);
        assert!((d.scene.config().tx_power.value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn los_antenna_is_above() {
        let d = Deployment::build(
            DeploymentSpec {
                placement: AntennaPlacement::Los,
                ..DeploymentSpec::default()
            },
            1,
        );
        assert!(d.scene.antenna().position().z > 0.0);
    }

    #[test]
    fn angle_tilts_boresight() {
        let d0 = Deployment::build(DeploymentSpec::default(), 1);
        let d45 = Deployment::build(
            DeploymentSpec {
                angle_deg: 45.0,
                ..DeploymentSpec::default()
            },
            1,
        );
        let b0 = d0.scene.antenna().boresight();
        let b45 = d45.scene.antenna().boresight();
        let angle = b0.angle_to(b45).to_degrees();
        assert!((angle - 45.0).abs() < 1e-6, "tilt {angle}");
    }

    #[test]
    fn same_seed_same_build() {
        let a = Deployment::build(DeploymentSpec::default(), 7);
        let b = Deployment::build(DeploymentSpec::default(), 7);
        assert_eq!(a.array.tags()[5].theta_tag, b.array.tags()[5].theta_tag);
    }
}
