//! The golden session: one fixed, fully deterministic recorded writing
//! session shared by the trace tool, the replay integration test, and the
//! pipeline benchmark.
//!
//! Everything here is seeded, so rebuilding the bench and re-running the
//! session reproduces the exact same report stream bit for bit — which is
//! what lets a trace recorded once be checked against a live re-run.

use crate::setup::{Deployment, DeploymentSpec};
use crate::trial::{Bench, LetterTrial};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

/// Deployment seed for the golden bench.
pub const GOLDEN_DEPLOYMENT_SEED: u64 = 42;
/// Calibration RNG seed for the golden bench.
pub const GOLDEN_CALIBRATION_SEED: u64 = 1;
/// The letter written in the golden session.
pub const GOLDEN_LETTER: char = 'L';
/// Trial seed for the golden session.
pub const GOLDEN_TRIAL_SEED: u64 = 7;

/// Builds the golden bench: the default deployment, calibrated.
pub fn golden_bench() -> Bench {
    Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), GOLDEN_DEPLOYMENT_SEED),
        RfipadConfig::default(),
        GOLDEN_CALIBRATION_SEED,
    )
}

/// Runs the golden session live on a bench built by [`golden_bench`]:
/// an average user writes [`GOLDEN_LETTER`]. The trial carries both the
/// report stream (what a trace records) and the live recognition result
/// (what a replay must reproduce).
pub fn golden_trial(bench: &Bench) -> LetterTrial {
    bench.run_letter_trial(GOLDEN_LETTER, &UserProfile::average(), GOLDEN_TRIAL_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_session_is_deterministic() {
        let bench = golden_bench();
        let a = golden_trial(&bench);
        let b = golden_trial(&bench);
        assert_eq!(a.reports.len(), b.reports.len());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x, y);
        }
        assert_eq!(a.result.letter, b.result.letter);
    }
}
