//! Line-oriented merge for `BENCH_pipeline.json`.
//!
//! The perf-trajectory file is written wholesale by `bench_pipeline` and
//! then enriched by probes that each own one top-level key
//! (`engine_bench` → `multi_session`, `trace_tool stats --bench` →
//! `telemetry_overhead`). Because the vendored serde is a no-op shim, the
//! merge is textual: the file is kept one top-level key per line, and
//! [`merge_entry`] replaces that key's line while leaving every other
//! probe's line untouched.

use std::io;
use std::path::Path;

/// The perf-trajectory file all probes share.
pub const BENCH_PATH: &str = "BENCH_pipeline.json";

/// Merges `"key": entry,` into the JSON object at `path`, replacing any
/// previous line for `key` and preserving all other lines. Creates the
/// file as `{ "key": entry }` when it does not exist.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn merge_entry_at(path: &Path, key: &str, entry: &str) -> io::Result<()> {
    let line = format!("  \"{key}\": {entry},");
    let marker = format!("\"{key}\"");
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let mut lines: Vec<String> = existing
                .lines()
                .filter(|l| !l.trim_start().starts_with(&marker))
                .map(String::from)
                .collect();
            let at = if lines.first().map(|l| l.trim() == "{").unwrap_or(false) {
                1
            } else {
                lines.insert(0, "{".into());
                lines.push("}".into());
                1
            };
            lines.insert(at, line);
            lines.join("\n") + "\n"
        }
        Err(_) => format!("{{\n{}\n}}\n", line.trim_end_matches(',')),
    };
    std::fs::write(path, merged)
}

/// [`merge_entry_at`] against [`BENCH_PATH`] in the current directory.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn merge_entry(key: &str, entry: &str) -> io::Result<()> {
    merge_entry_at(Path::new(BENCH_PATH), key, entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rfipad-benchjson-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn creates_then_replaces_and_preserves_other_keys() {
        let path = scratch("merge.json");
        let _ = std::fs::remove_file(&path);
        merge_entry_at(&path, "alpha", "{ \"x\": 1 }").expect("create");
        merge_entry_at(&path, "beta", "{ \"y\": 2 }").expect("add");
        merge_entry_at(&path, "alpha", "{ \"x\": 3 }").expect("replace");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.matches("\"alpha\"").count(), 1);
        assert!(text.contains("\"x\": 3"));
        assert!(text.contains("\"y\": 2"));
        assert!(text.starts_with("{\n"));
        assert!(text.trim_end().ends_with('}'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wraps_bare_content_in_an_object() {
        let path = scratch("bare.json");
        std::fs::write(&path, "  \"legacy\": 1,\n").expect("seed file");
        merge_entry_at(&path, "fresh", "2").expect("merge");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"legacy\": 1"));
        assert!(text.contains("\"fresh\": 2"));
        let _ = std::fs::remove_file(&path);
    }
}
