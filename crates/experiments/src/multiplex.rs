//! Antenna-port multiplexing: one reader time-sharing several scenes.
//!
//! Multi-port readers (the Speedway R420 has four ports) dwell on each
//! antenna in turn; Gen2 Select can likewise dedicate dwells to a tag
//! population. Both reduce to the same simulation: alternate short reader
//! runs across scenes and merge the report streams in time order.

use rand::Rng;
use rf_sim::scene::Scene;
use rf_sim::targets::MovingTarget;
use rfid_gen2::reader::Gen2Reader;
use rfid_gen2::report::TagReport;

/// One multiplexed port: a scene and the moving targets present in it.
pub struct Port<'a> {
    /// The scene this port's antenna illuminates.
    pub scene: &'a Scene,
    /// Moving targets visible in this scene.
    pub targets: &'a [&'a dyn MovingTarget],
}

impl std::fmt::Debug for Port<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Port")
            .field("tags", &self.scene.tags().len())
            .field("targets", &self.targets.len())
            .finish()
    }
}

/// Runs the reader across `ports` in round-robin dwells of `dwell_s`
/// seconds from `start` for `duration`, returning the merged, time-ordered
/// report stream.
///
/// # Panics
///
/// Panics if `ports` is empty or `dwell_s` is not positive.
pub fn run_multiplexed<R: Rng + ?Sized>(
    reader: &Gen2Reader,
    ports: &[Port<'_>],
    dwell_s: f64,
    start: f64,
    duration: f64,
    rng: &mut R,
) -> Vec<TagReport> {
    assert!(!ports.is_empty(), "need at least one port");
    assert!(dwell_s > 0.0, "dwell must be positive");
    let mut events = Vec::new();
    let mut t = start;
    let mut port = 0usize;
    while t < start + duration {
        let dwell = dwell_s.min(start + duration - t);
        let p = &ports[port];
        let run = reader.run(p.scene, p.targets, t, dwell, rng);
        events.extend(run.events);
        t += dwell_s;
        port = (port + 1) % ports.len();
    }
    events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deployment, DeploymentSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rf_sim::tags::TagId;

    #[test]
    fn round_robin_serves_both_ports() {
        let a = Deployment::build(DeploymentSpec::default(), 1);
        let b = Deployment::build(DeploymentSpec::default(), 2);
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(5);
        let no_targets: [&dyn MovingTarget; 0] = [];
        let events = run_multiplexed(
            &reader,
            &[
                Port {
                    scene: &a.scene,
                    targets: &no_targets,
                },
                Port {
                    scene: &b.scene,
                    targets: &no_targets,
                },
            ],
            0.25,
            0.0,
            2.0,
            &mut rng,
        );
        assert!(!events.is_empty());
        // Time-ordered.
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        // Both pads' tags appear (same ids here, but reads come from both
        // dwell phases: all 25 tags covered).
        let unique: std::collections::HashSet<TagId> = events.iter().map(|e| e.tag).collect();
        assert_eq!(unique.len(), 25);
    }

    #[test]
    #[should_panic(expected = "need at least one port")]
    fn empty_ports_rejected() {
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(6);
        run_multiplexed(&reader, &[], 0.25, 0.0, 1.0, &mut rng);
    }
}
