//! Property-based tests of the DSP invariants.

use proptest::prelude::*;
use sigproc::filter::moving_average;
use sigproc::frames::{FrameBuilder, FrameSeq};
use sigproc::otsu::otsu_threshold;
use sigproc::series::TimeSeries;
use sigproc::stats::{self, Welford};
use sigproc::unwrap::{unwrap_phase, wrap_phase, StreamingUnwrapper};

proptest! {
    /// Any true phase sequence whose steps stay below π survives the
    /// wrap→unwrap round trip exactly (up to the 2π offset of the start).
    #[test]
    fn unwrap_recovers_bounded_step_sequences(
        start in -20.0f64..20.0,
        steps in prop::collection::vec(-3.0f64..3.0, 1..200),
    ) {
        let mut truth = vec![start];
        for s in &steps {
            let last = *truth.last().unwrap();
            truth.push(last + s);
        }
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_phase(p)).collect();
        let unwrapped = unwrap_phase(&wrapped);
        let offset = unwrapped[0] - truth[0];
        // Offset must be a multiple of 2π…
        let cycles = offset / std::f64::consts::TAU;
        prop_assert!((cycles - cycles.round()).abs() < 1e-6);
        // …and the trend must match everywhere.
        for (u, t) in unwrapped.iter().zip(&truth) {
            prop_assert!((u - t - offset).abs() < 1e-6);
        }
    }

    /// Wrapping always lands in [0, 2π) and is idempotent.
    #[test]
    fn wrap_phase_range_and_idempotence(p in -1e4f64..1e4) {
        let w = wrap_phase(p);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        prop_assert!((wrap_phase(w) - w).abs() < 1e-9);
    }

    /// Streaming unwrapping equals batch unwrapping on any input.
    #[test]
    fn streaming_equals_batch(values in prop::collection::vec(0.0f64..std::f64::consts::TAU, 0..100)) {
        let batch = unwrap_phase(&values);
        let mut s = StreamingUnwrapper::new();
        let streamed: Vec<f64> = values.iter().map(|&v| s.push(v)).collect();
        prop_assert_eq!(batch, streamed);
    }

    /// Otsu's threshold always separates two well-separated clusters.
    #[test]
    fn otsu_separates_clusters(
        lo_count in 5usize..60,
        hi_count in 5usize..60,
        gap in 2.0f64..50.0,
        noise in 0.0f64..0.4,
    ) {
        let mut data = Vec::new();
        for i in 0..lo_count {
            data.push((i as f64 * 0.37).sin() * noise);
        }
        for i in 0..hi_count {
            data.push(gap + (i as f64 * 0.53).cos() * noise);
        }
        let t = otsu_threshold(&data).expect("bimodal data has a threshold");
        prop_assert!(t > noise && t < gap - noise, "threshold {} outside gap", t);
    }

    /// Welford's online accumulator matches batch statistics.
    #[test]
    fn welford_matches_batch(data in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        prop_assert!((w.mean() - stats::mean(&data)).abs() < 1e-6);
        prop_assert!((w.population_variance() - stats::variance(&data)).abs() < 1e-3);
    }

    /// A moving average never exceeds the data's range.
    #[test]
    fn moving_average_bounded(
        data in prop::collection::vec(-100.0f64..100.0, 1..100),
        half in 0usize..8,
    ) {
        let lo = stats::min(&data);
        let hi = stats::max(&data);
        for v in moving_average(&data, half) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// Resampling a series stays inside the original time span and value
    /// envelope (linear interpolation cannot overshoot).
    #[test]
    fn resample_stays_in_envelope(
        n in 2usize..50,
        dt in 0.01f64..0.5,
    ) {
        let ts: TimeSeries = (0..n)
            .map(|i| (i as f64 * 0.13, ((i * 31) % 17) as f64))
            .collect();
        let lo = stats::min(ts.values());
        let hi = stats::max(ts.values());
        let r = ts.resample(dt);
        for (t, v) in r.iter() {
            prop_assert!(t >= ts.start_time().unwrap() - 1e-9);
            prop_assert!(t <= ts.end_time().unwrap() + 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// slice_time returns exactly the samples in [start, end).
    #[test]
    fn slice_time_is_exact(
        n in 1usize..80,
        a in 0.0f64..10.0,
        len in 0.0f64..10.0,
    ) {
        let ts: TimeSeries = (0..n).map(|i| (i as f64 * 0.1, i as f64)).collect();
        let s = ts.slice_time(a, a + len);
        for (t, _) in s.iter() {
            prop_assert!(t >= a && t < a + len);
        }
        let expected = ts.iter().filter(|(t, _)| *t >= a && *t < a + len).count();
        prop_assert_eq!(s.len(), expected);
    }

    /// The streaming `FrameBuilder` emits frames **bit-identical** to the
    /// batch `FrameSeq::build_with_floors` for any stream count, sample
    /// interleaving, ragged per-stream spans (including empty frames and
    /// empty streams), noise floors, and a mid-feed intermediate build.
    #[test]
    fn frame_builder_matches_batch_build(
        specs in prop::collection::vec(
            (
                0.0f64..1.0,                                            // stream start offset
                prop::collection::vec((0.0f64..0.15, -5.0f64..5.0), 0..40), // (dt, value) steps
            ),
            1..4,
        ),
        use_floors in any::<bool>(),
        floor_seed in prop::collection::vec(-0.5f64..1.5, 3..4),
        frame_len in 0.05f64..0.3,
        start in 0.0f64..0.3,
        span in 0.0f64..2.5,
    ) {
        let streams: Vec<TimeSeries> = specs
            .iter()
            .map(|(offset, steps)| {
                let mut t = *offset;
                let mut ts = TimeSeries::new();
                for &(dt, v) in steps {
                    ts.push(t, v);
                    t += dt;
                }
                ts
            })
            .collect();
        let floors: Option<Vec<f64>> =
            use_floors.then(|| floor_seed[..streams.len()].to_vec());
        let end = start + span;
        let batch = FrameSeq::build_with_floors(&streams, floors.as_deref(), start, end, frame_len);

        let mut builder = FrameBuilder::new(streams.len(), floors, start, frame_len);
        // Interleave samples in global time order, as a live feed would
        // deliver them; the stable sort keeps each stream's own order.
        let mut samples: Vec<(f64, usize, f64)> = streams
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.iter().map(move |(t, v)| (t, i, v)))
            .collect();
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN times"));
        let mid = samples.len() / 2;
        for &(t, i, v) in &samples[..mid] {
            builder.push(i, t, v);
        }
        let _ = builder.build(end); // intermediate build must not disturb the final one
        for &(t, i, v) in &samples[mid..] {
            builder.push(i, t, v);
        }
        prop_assert_eq!(builder.build(end), batch);
    }

    /// The cursor-sweep `resample_into` is bit-identical to a per-grid-point
    /// `interpolate` walk (the previous implementation).
    #[test]
    fn resample_into_matches_pointwise_interpolate(
        steps in prop::collection::vec((0.0f64..0.3, -10.0f64..10.0), 2..60),
        dt in 0.01f64..0.5,
    ) {
        let mut t = 0.0;
        let mut ts = TimeSeries::new();
        for &(step, v) in &steps {
            ts.push(t, v);
            t += step;
        }
        let mut reference = TimeSeries::new();
        let start = ts.start_time().expect("nonempty");
        let end = ts.end_time().expect("nonempty");
        let mut g = start;
        while g <= end + 1e-12 {
            if let Some(v) = ts.interpolate(g.min(end)) {
                reference.push(g.min(end), v);
            }
            g += dt;
        }
        let mut out = TimeSeries::new();
        ts.resample_into(dt, &mut out);
        prop_assert_eq!(out, reference);
    }

    /// Percentiles are monotone in the requested quantile.
    #[test]
    fn percentiles_monotone(data in prop::collection::vec(-50.0f64..50.0, 1..100)) {
        let p25 = stats::percentile(&data, 25.0);
        let p50 = stats::percentile(&data, 50.0);
        let p75 = stats::percentile(&data, 75.0);
        prop_assert!(p25 <= p50 + 1e-12);
        prop_assert!(p50 <= p75 + 1e-12);
    }
}
