//! Property-based tests of the DSP invariants.

use proptest::prelude::*;
use sigproc::filter::moving_average;
use sigproc::otsu::otsu_threshold;
use sigproc::series::TimeSeries;
use sigproc::stats::{self, Welford};
use sigproc::unwrap::{unwrap_phase, wrap_phase, StreamingUnwrapper};

proptest! {
    /// Any true phase sequence whose steps stay below π survives the
    /// wrap→unwrap round trip exactly (up to the 2π offset of the start).
    #[test]
    fn unwrap_recovers_bounded_step_sequences(
        start in -20.0f64..20.0,
        steps in prop::collection::vec(-3.0f64..3.0, 1..200),
    ) {
        let mut truth = vec![start];
        for s in &steps {
            let last = *truth.last().unwrap();
            truth.push(last + s);
        }
        let wrapped: Vec<f64> = truth.iter().map(|&p| wrap_phase(p)).collect();
        let unwrapped = unwrap_phase(&wrapped);
        let offset = unwrapped[0] - truth[0];
        // Offset must be a multiple of 2π…
        let cycles = offset / std::f64::consts::TAU;
        prop_assert!((cycles - cycles.round()).abs() < 1e-6);
        // …and the trend must match everywhere.
        for (u, t) in unwrapped.iter().zip(&truth) {
            prop_assert!((u - t - offset).abs() < 1e-6);
        }
    }

    /// Wrapping always lands in [0, 2π) and is idempotent.
    #[test]
    fn wrap_phase_range_and_idempotence(p in -1e4f64..1e4) {
        let w = wrap_phase(p);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        prop_assert!((wrap_phase(w) - w).abs() < 1e-9);
    }

    /// Streaming unwrapping equals batch unwrapping on any input.
    #[test]
    fn streaming_equals_batch(values in prop::collection::vec(0.0f64..std::f64::consts::TAU, 0..100)) {
        let batch = unwrap_phase(&values);
        let mut s = StreamingUnwrapper::new();
        let streamed: Vec<f64> = values.iter().map(|&v| s.push(v)).collect();
        prop_assert_eq!(batch, streamed);
    }

    /// Otsu's threshold always separates two well-separated clusters.
    #[test]
    fn otsu_separates_clusters(
        lo_count in 5usize..60,
        hi_count in 5usize..60,
        gap in 2.0f64..50.0,
        noise in 0.0f64..0.4,
    ) {
        let mut data = Vec::new();
        for i in 0..lo_count {
            data.push((i as f64 * 0.37).sin() * noise);
        }
        for i in 0..hi_count {
            data.push(gap + (i as f64 * 0.53).cos() * noise);
        }
        let t = otsu_threshold(&data).expect("bimodal data has a threshold");
        prop_assert!(t > noise && t < gap - noise, "threshold {} outside gap", t);
    }

    /// Welford's online accumulator matches batch statistics.
    #[test]
    fn welford_matches_batch(data in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        prop_assert!((w.mean() - stats::mean(&data)).abs() < 1e-6);
        prop_assert!((w.population_variance() - stats::variance(&data)).abs() < 1e-3);
    }

    /// A moving average never exceeds the data's range.
    #[test]
    fn moving_average_bounded(
        data in prop::collection::vec(-100.0f64..100.0, 1..100),
        half in 0usize..8,
    ) {
        let lo = stats::min(&data);
        let hi = stats::max(&data);
        for v in moving_average(&data, half) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// Resampling a series stays inside the original time span and value
    /// envelope (linear interpolation cannot overshoot).
    #[test]
    fn resample_stays_in_envelope(
        n in 2usize..50,
        dt in 0.01f64..0.5,
    ) {
        let ts: TimeSeries = (0..n)
            .map(|i| (i as f64 * 0.13, ((i * 31) % 17) as f64))
            .collect();
        let lo = stats::min(ts.values());
        let hi = stats::max(ts.values());
        let r = ts.resample(dt);
        for (t, v) in r.iter() {
            prop_assert!(t >= ts.start_time().unwrap() - 1e-9);
            prop_assert!(t <= ts.end_time().unwrap() + 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// slice_time returns exactly the samples in [start, end).
    #[test]
    fn slice_time_is_exact(
        n in 1usize..80,
        a in 0.0f64..10.0,
        len in 0.0f64..10.0,
    ) {
        let ts: TimeSeries = (0..n).map(|i| (i as f64 * 0.1, i as f64)).collect();
        let s = ts.slice_time(a, a + len);
        for (t, _) in s.iter() {
            prop_assert!(t >= a && t < a + len);
        }
        let expected = ts.iter().filter(|(t, _)| *t >= a && *t < a + len).count();
        prop_assert_eq!(s.len(), expected);
    }

    /// Percentiles are monotone in the requested quantile.
    #[test]
    fn percentiles_monotone(data in prop::collection::vec(-50.0f64..50.0, 1..100)) {
        let p25 = stats::percentile(&data, 25.0);
        let p50 = stats::percentile(&data, 50.0);
        let p75 = stats::percentile(&data, 75.0);
        prop_assert!(p25 <= p50 + 1e-12);
        prop_assert!(p50 <= p75 + 1e-12);
    }
}
