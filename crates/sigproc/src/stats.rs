//! Summary statistics, online accumulation, and empirical CDFs.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
///
/// ```
/// assert_eq!(sigproc::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance of a slice. Returns 0.0 for fewer than two samples.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation of a slice.
///
/// ```
/// let sd = sigproc::stats::std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((sd - 2.0).abs() < 1e-12);
/// ```
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Root mean square of a slice. Returns 0.0 for an empty slice.
///
/// ```
/// assert!((sigproc::stats::rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
/// ```
pub fn rms(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    // The fused kernel accumulates squares in element order, so this is
    // bit-identical to the map-sum it replaces.
    let (_, sumsq) = crate::kernel::sum_sumsq(data);
    (sumsq / data.len() as f64).sqrt()
}

/// Median of a slice (average of the two central elements for even length).
/// Returns 0.0 for an empty slice.
pub fn median(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or the input contains NaN.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Minimum of a slice, ignoring NaN. Returns `f64::INFINITY` for empty input.
pub fn min(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice, ignoring NaN. Returns `f64::NEG_INFINITY` for empty input.
pub fn max(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Numerically stable online mean/variance accumulator (Welford's method).
///
/// # Example
///
/// ```
/// use sigproc::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample (Bessel-corrected) variance (0.0 with fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Empirical cumulative distribution function over a fixed sample set.
///
/// # Example
///
/// ```
/// use sigproc::stats::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(2.5), 0.5);
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|v| !v.is_nan()), "NaN in ECDF input");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF input"));
        Self { sorted: samples }
    }

    /// Fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample value at which the CDF reaches `q` (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]` or the ECDF is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range: {q}");
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the CDF at evenly spaced points, returning `(x, F(x))` pairs
    /// suitable for plotting (as in the paper's Fig. 21).
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("nonempty");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((variance(&data) - 1.25).abs() < 1e-12);
        assert!((std_dev(&data) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_endpoints() {
        let d = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&d, 0.0), 10.0);
        assert_eq!(percentile(&d, 100.0), 30.0);
        assert_eq!(percentile(&d, 50.0), 20.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn rms_constant_signal() {
        assert!((rms(&[2.0; 16]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 31) % 97) as f64 * 0.37).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert!((w.mean() - mean(&data)).abs() < 1e-9);
        assert!((w.population_variance() - variance(&data)).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..50).map(|i| 100.0 - i as f64).collect();
        let mut wa = Welford::new();
        a.iter().for_each(|&x| wa.push(x));
        let mut wb = Welford::new();
        b.iter().for_each(|&x| wb.push(x));
        let mut seq = Welford::new();
        a.iter().chain(&b).for_each(|&x| seq.push(x));
        wa.merge(&wb);
        assert_eq!(wa.count(), seq.count());
        assert!((wa.mean() - seq.mean()).abs() < 1e-9);
        assert!((wa.population_variance() - seq.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let cdf = Ecdf::new(vec![1.0, 1.0, 2.0]);
        assert!((cdf.eval(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cdf.eval(1.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.eval(2.0), 1.0);
    }

    #[test]
    fn ecdf_quantile() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.quantile(0.2), 1.0);
        assert_eq!(cdf.quantile(0.9), 5.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let cdf = Ecdf::new((0..50).map(|i| (i as f64 * 13.7) % 11.0).collect());
        let curve = cdf.curve(40);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
        assert_eq!(curve.last().map(|p| p.1), Some(1.0));
    }

    #[test]
    fn min_max_ignore_nan() {
        let d = [3.0, f64::NAN, -1.0, 7.0];
        assert_eq!(min(&d), -1.0);
        assert_eq!(max(&d), 7.0);
    }
}
