//! Irregularly-sampled time series.
//!
//! RFID tag reads arrive whenever the Gen2 inventory happens to single out a
//! tag, so per-tag phase/RSS streams are *not* uniformly sampled. The paper
//! mitigates this by framing (see [`crate::frames`]); for analyses that need
//! uniform sampling this module provides linear-interpolation resampling.

use serde::{Deserialize, Serialize};

/// A time-ordered sequence of `(timestamp seconds, value)` samples.
///
/// Timestamps must be non-decreasing; [`push`](Self::push) enforces this.
///
/// # Example
///
/// ```
/// use sigproc::series::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// ts.push(0.0, 1.0);
/// ts.push(1.0, 3.0);
/// assert_eq!(ts.interpolate(0.5), Some(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or times are not non-decreasing.
    pub fn from_parts(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be non-decreasing"
        );
        Self { times, values }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last timestamp.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "timestamp went backwards: {t} < {last}");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Removes all samples, keeping the allocated capacity (for use as a
    /// reusable scratch buffer with the `_into` methods).
    pub fn clear(&mut self) {
        self.times.clear();
        self.values.clear();
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Timestamps slice.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Values slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates `(t, v)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// First timestamp, if any.
    pub fn start_time(&self) -> Option<f64> {
        self.times.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end_time(&self) -> Option<f64> {
        self.times.last().copied()
    }

    /// Total time span in seconds (0.0 if fewer than two samples).
    pub fn duration(&self) -> f64 {
        match (self.start_time(), self.end_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }

    /// Linear interpolation at time `t`.
    ///
    /// Returns `None` outside the sampled span or for an empty series.
    /// At an exact sample time, returns that sample.
    pub fn interpolate(&self, t: f64) -> Option<f64> {
        if self.times.is_empty() || t < self.times[0] || t > *self.times.last().expect("nonempty") {
            return None;
        }
        let idx = self.times.partition_point(|&x| x < t);
        if idx < self.times.len() && self.times[idx] == t {
            return Some(self.values[idx]);
        }
        // t lies strictly between times[idx-1] and times[idx].
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if t1 == t0 {
            return Some(v1);
        }
        let frac = (t - t0) / (t1 - t0);
        Some(v0 + frac * (v1 - v0))
    }

    /// Resamples to a uniform grid with spacing `dt`, via linear interpolation.
    ///
    /// Returns an empty series when this series has fewer than two samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn resample(&self, dt: f64) -> TimeSeries {
        let mut out = TimeSeries::new();
        self.resample_into(dt, &mut out);
        out
    }

    /// Like [`resample`](Self::resample), but reuses `out`'s allocation and
    /// sweeps a single cursor over the samples — O(n + m) for n samples and
    /// m grid points instead of a binary search per grid point. The output
    /// is bit-identical to [`resample`](Self::resample).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn resample_into(&self, dt: f64, out: &mut TimeSeries) {
        crate::kernel::resample_linear_into(
            &self.times,
            &self.values,
            dt,
            &mut out.times,
            &mut out.values,
        );
    }

    /// Returns the sub-series with `start <= t < end`.
    pub fn slice_time(&self, start: f64, end: f64) -> TimeSeries {
        let lo = self.times.partition_point(|&x| x < start);
        let hi = self.times.partition_point(|&x| x < end);
        TimeSeries {
            times: self.times[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Applies a function to every value, keeping timestamps.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            times: self.times.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Consecutive differences of the values: `v[i+1] - v[i]`, timestamped at
    /// the later sample. Empty if fewer than two samples.
    pub fn diff(&self) -> TimeSeries {
        let mut out = TimeSeries::new();
        self.diff_into(&mut out);
        out
    }

    /// Like [`diff`](Self::diff), but reuses `out`'s allocation.
    pub fn diff_into(&self, out: &mut TimeSeries) {
        out.clear();
        if self.times.len() < 2 {
            return;
        }
        out.times.reserve(self.times.len() - 1);
        out.values.reserve(self.times.len() - 1);
        for i in 1..self.times.len() {
            out.times.push(self.times[i]);
            out.values.push(self.values[i] - self.values[i - 1]);
        }
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        (0..11).map(|i| (i as f64 * 0.1, i as f64)).collect()
    }

    #[test]
    fn push_and_len() {
        let ts = ramp();
        assert_eq!(ts.len(), 11);
        assert!(!ts.is_empty());
        assert_eq!(ts.start_time(), Some(0.0));
        assert!((ts.duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "timestamp went backwards")]
    fn rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    fn interpolate_exact_and_between() {
        let ts = ramp();
        assert_eq!(ts.interpolate(0.2), Some(2.0));
        let v = ts.interpolate(0.25).expect("in range");
        assert!((v - 2.5).abs() < 1e-9);
    }

    #[test]
    fn interpolate_out_of_range_is_none() {
        let ts = ramp();
        assert_eq!(ts.interpolate(-0.1), None);
        assert_eq!(ts.interpolate(1.1), None);
        assert_eq!(TimeSeries::new().interpolate(0.0), None);
    }

    #[test]
    fn resample_uniform() {
        let ts = ramp();
        let r = ts.resample(0.05);
        assert!(r.len() >= 20);
        for (t, v) in r.iter() {
            assert!((v - t * 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_too_short_is_empty() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        assert!(ts.resample(0.1).is_empty());
    }

    #[test]
    fn slice_time_half_open() {
        let ts = ramp();
        let s = ts.slice_time(0.2, 0.5);
        assert_eq!(s.len(), 3); // samples at 0.2, 0.3, 0.4
        assert_eq!(s.values(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn diff_of_ramp_is_constant() {
        let ts = ramp();
        let d = ts.diff();
        assert_eq!(d.len(), 10);
        for (_, v) in d.iter() {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn map_values_preserves_times() {
        let ts = ramp();
        let m = ts.map_values(|v| v * 2.0);
        assert_eq!(m.times(), ts.times());
        assert_eq!(m.values()[5], 10.0);
    }

    #[test]
    fn resample_into_reuses_buffer_and_matches_resample() {
        let ts = ramp();
        let mut out = TimeSeries::new();
        out.push(99.0, 99.0); // stale content must be cleared
        ts.resample_into(0.07, &mut out);
        assert_eq!(out, ts.resample(0.07));
    }

    #[test]
    fn resample_into_handles_duplicate_times() {
        let ts: TimeSeries = [(0.0, 1.0), (0.5, 2.0), (0.5, 4.0), (1.0, 3.0)]
            .into_iter()
            .collect();
        let mut out = TimeSeries::new();
        ts.resample_into(0.25, &mut out);
        assert_eq!(out, ts.resample(0.25));
    }

    #[test]
    fn diff_into_matches_diff() {
        let ts = ramp();
        let mut out = TimeSeries::new();
        ts.diff_into(&mut out);
        assert_eq!(out, ts.diff());
        TimeSeries::new().diff_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_usable() {
        let mut ts = ramp();
        ts.clear();
        assert!(ts.is_empty());
        ts.push(0.0, 1.0); // still accepts samples after clear
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 1.0);
        ts.push(1.0, 2.0);
        assert_eq!(ts.len(), 2);
        // Interpolation at the duplicated instant returns a defined value.
        let v = ts.interpolate(1.0).expect("in range");
        assert!(v == 1.0 || v == 2.0);
    }
}
