//! Signal-processing primitives for RF sensing pipelines.
//!
//! This crate collects the deterministic, dependency-free DSP building blocks
//! that the RFIPad recognition pipeline (and its experiment harness) are built
//! from:
//!
//! - [`unwrap`] — phase de-periodicity (unwrapping) for values reported
//!   modulo 2π, both batch and streaming;
//! - [`series`] — irregularly-sampled time series with resampling and
//!   time-window slicing;
//! - [`frames`] — fixed-duration framing, per-frame RMS (paper Eq. 11), and
//!   sliding windows of frames (paper Eq. 12);
//! - [`otsu`] — Otsu's clustering-based threshold selection for gray-scale
//!   data;
//! - [`grid`] — small 2-D gray / binary images laid over a tag array, with
//!   connected components and shape moments;
//! - [`filter`] — moving-average and median filters, trough (local-minimum)
//!   detection;
//! - [`stats`] — summary statistics, online (Welford) accumulation, and
//!   empirical CDFs;
//! - [`kernel`] — allocation-free slice kernels under the above (fused
//!   reductions, windowed statistics, resampling, histogramming, mask
//!   moments) with a reusable [`kernel::Scratch`] arena and naive scalar
//!   references for bit-identity testing.
//!
//! # Example
//!
//! ```
//! use sigproc::unwrap::unwrap_phase;
//! use std::f64::consts::TAU;
//!
//! // A phase ramp that wraps at 2π…
//! let wrapped: Vec<f64> = (0..100).map(|i| (0.1 * i as f64) % TAU).collect();
//! let unwrapped = unwrap_phase(&wrapped);
//! // …becomes a straight line after unwrapping.
//! for (i, v) in unwrapped.iter().enumerate() {
//!     assert!((v - 0.1 * i as f64).abs() < 1e-9);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod filter;
pub mod frames;
pub mod grid;
pub mod kernel;
pub mod otsu;
pub mod series;
pub mod stats;
pub mod unwrap;

pub use frames::{Frame, FrameSeq, Window};
pub use grid::{BinaryGrid, GridImage};
pub use otsu::otsu_threshold;
pub use series::TimeSeries;
pub use unwrap::{unwrap_phase, StreamingUnwrapper};
