//! Allocation-free, slice-oriented DSP kernels for the per-tick hot path.
//!
//! Every kernel here is a tight loop over `&[f64]` (or `&[bool]`) that
//! writes into caller-owned output buffers (`_into` variants) or returns
//! scalars, so a steady-state caller that reuses its buffers performs zero
//! heap allocations. The [`Scratch`] arena bundles the intermediate buffers
//! a kernel chain needs; it is cleared between uses, never shrunk, so its
//! capacity converges to the high-water mark of the workload.
//!
//! # Bit-identity contract
//!
//! The online pipeline's golden-trace replay must stay bit-identical across
//! refactors, which constrains what "SIMD-ready" may mean here:
//!
//! - **Reductions** (`sum_sumsq`, `minmax`, the windowed statistics) keep
//!   the exact sequential accumulation order of the naive implementations
//!   they replace. Reassociating an `f64` sum into multiple accumulator
//!   lanes would change the rounding and therefore the bits, so these
//!   kernels win through fusion (one pass instead of two) and allocation
//!   removal, not through vectorized accumulation.
//! - **Elementwise maps** (`normalize_unit_into`, `binarize_into`, the
//!   interpolation inside `resample_linear_into`) have no cross-element
//!   data flow, so LLVM is free to autovectorize them as written.
//! - `median_of_window` uses an in-place stable insertion sort over the
//!   reusable `sort` buffer, reproducing `stats::median`'s stable
//!   `sort_by` ordering bit-for-bit (signed zeros included) without the
//!   temporary buffer a stable merge sort allocates.
//!
//! Each kernel is paired with a naive scalar implementation in
//! [`mod@reference`]; proptests assert bitwise agreement on NaN-free input, and
//! the `kernel_bench` binary in the `bench` crate times old vs. new.

/// Reusable buffers for kernel chains: plain growable vectors, cleared
/// between uses but never freed, so steady-state reuse does not allocate.
///
/// Fields are public so callers can borrow several buffers disjointly in
/// one expression (e.g. read `a` while writing `b`).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// First general-purpose `f64` buffer of a kernel chain.
    pub a: Vec<f64>,
    /// Second general-purpose `f64` buffer.
    pub b: Vec<f64>,
    /// Third general-purpose `f64` buffer.
    pub c: Vec<f64>,
    /// Sort buffer for [`median_of_window`] / [`median_filter_into`].
    pub sort: Vec<f64>,
    /// `(start, end)` index-run buffer for run-merging passes.
    pub runs: Vec<(usize, usize)>,
    /// Second run buffer, for passes that rewrite [`Scratch::runs`].
    pub runs2: Vec<(usize, usize)>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties every buffer, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.a.clear();
        self.b.clear();
        self.c.clear();
        self.sort.clear();
        self.runs.clear();
        self.runs2.clear();
    }
}

/// Fused sum and sum-of-squares over one pass.
///
/// Both accumulators follow the element order exactly, so each result is
/// bit-identical to the corresponding separate `iter().sum()` pass.
pub fn sum_sumsq(data: &[f64]) -> (f64, f64) {
    // `Iterator::sum::<f64>()` folds from -0.0 (so a sum of negative zeros
    // stays -0.0); seed the accumulators the same way for bit-identity.
    let mut sum = -0.0;
    let mut sumsq = -0.0;
    for &x in data {
        sum += x;
        sumsq += x * x;
    }
    (sum, sumsq)
}

/// Fused NaN-ignoring minimum and maximum over one pass.
///
/// Returns `(f64::INFINITY, f64::NEG_INFINITY)` for empty (or all-NaN)
/// input, matching [`crate::stats::min`] / [`crate::stats::max`].
pub fn minmax(data: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in data {
        if v.is_nan() {
            continue;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Centered moving average with window `2*half + 1`, shrinking at the
/// edges, written into `out`. `half == 0` copies the input.
///
/// Matches [`crate::filter::moving_average`] bit-for-bit: each window is
/// summed independently in element order (a sliding-sum recurrence would
/// round differently).
pub fn moving_average_into(data: &[f64], half: usize, out: &mut Vec<f64>) {
    out.clear();
    if half == 0 || data.is_empty() {
        out.extend_from_slice(data);
        return;
    }
    let n = data.len();
    out.reserve(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &data[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
}

/// Standard deviation of the centered window `2*half + 1` around each
/// element (shrinking at the edges), written into `out`.
pub fn windowed_std_into(data: &[f64], half: usize, out: &mut Vec<f64>) {
    out.clear();
    let n = data.len();
    out.reserve(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(crate::stats::std_dev(&data[lo..hi]));
    }
}

/// RMS of the centered window `2*half + 1` around each element (shrinking
/// at the edges), written into `out`.
pub fn windowed_rms_into(data: &[f64], half: usize, out: &mut Vec<f64>) {
    out.clear();
    let n = data.len();
    out.reserve(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(crate::stats::rms(&data[lo..hi]));
    }
}

/// Minimum of the centered window `2*half + 1` around each element
/// (shrinking at the edges), written into `out` — a grayscale erosion.
pub fn windowed_min_into(data: &[f64], half: usize, out: &mut Vec<f64>) {
    out.clear();
    let n = data.len();
    out.reserve(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(data[lo..hi].iter().cloned().fold(f64::INFINITY, f64::min));
    }
}

/// Median of one window using `sort` as reusable scratch. Returns 0.0 for
/// an empty window.
///
/// The scratch is sorted with an in-place stable insertion sort — built
/// for the short windows of [`median_filter_into`] — so the result matches
/// [`crate::stats::median`] (stable `sort_by`) bit-for-bit without the
/// temporary allocation of a merge sort.
///
/// # Panics
///
/// Panics if the window contains NaN.
pub fn median_of_window(window: &[f64], sort: &mut Vec<f64>) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    sort.clear();
    sort.extend_from_slice(window);
    for i in 1..sort.len() {
        let mut j = i;
        while j > 0 {
            match sort[j - 1]
                .partial_cmp(&sort[j])
                .expect("NaN in median input")
            {
                std::cmp::Ordering::Greater => {
                    sort.swap(j - 1, j);
                    j -= 1;
                }
                _ => break,
            }
        }
    }
    let n = sort.len();
    if n % 2 == 1 {
        sort[n / 2]
    } else {
        0.5 * (sort[n / 2 - 1] + sort[n / 2])
    }
}

/// Centered median filter with window `2*half + 1`, shrinking at the
/// edges, written into `out`. `half == 0` copies the input. `sort` is the
/// reusable sort scratch.
///
/// # Panics
///
/// Panics if the input contains NaN (from the window median).
pub fn median_filter_into(data: &[f64], half: usize, sort: &mut Vec<f64>, out: &mut Vec<f64>) {
    out.clear();
    if half == 0 || data.is_empty() {
        out.extend_from_slice(data);
        return;
    }
    let n = data.len();
    out.reserve(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(median_of_window(&data[lo..hi], sort));
    }
}

/// Linear resampling of `(times, values)` onto a uniform grid with spacing
/// `dt`, sweeping a single cursor — O(n + m) for n samples and m grid
/// points. Outputs are cleared first; fewer than two samples yield empty
/// output.
///
/// Bit-identical to a per-grid-point binary-search interpolation
/// ([`reference::resample_linear`]): the cursor lands on the same index
/// `partition_point` would find.
///
/// # Panics
///
/// Panics if `dt <= 0` or the slices differ in length.
pub fn resample_linear_into(
    times: &[f64],
    values: &[f64],
    dt: f64,
    out_times: &mut Vec<f64>,
    out_values: &mut Vec<f64>,
) {
    assert!(dt > 0.0, "resample interval must be positive");
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    out_times.clear();
    out_values.clear();
    if times.len() < 2 {
        return;
    }
    let start = times[0];
    let end = *times.last().expect("nonempty");
    let mut idx = 0;
    let mut t = start;
    while t <= end + 1e-12 {
        let tc = t.min(end);
        // Advance the cursor to the first sample with time >= tc — the same
        // index a binary search would find. Grid times are non-decreasing,
        // so the cursor never moves back.
        while idx < times.len() && times[idx] < tc {
            idx += 1;
        }
        let v = if idx < times.len() && times[idx] == tc {
            values[idx]
        } else {
            // tc lies strictly between times[idx-1] and times[idx].
            let (t0, t1) = (times[idx - 1], times[idx]);
            let (v0, v1) = (values[idx - 1], values[idx]);
            if t1 == t0 {
                v1
            } else {
                let frac = (tc - t0) / (t1 - t0);
                v0 + frac * (v1 - v0)
            }
        };
        out_times.push(tc);
        out_values.push(v);
        t += dt;
    }
}

/// Accumulates `data` into equal-width histogram bins of width `width`
/// starting at `lo`, clamping overflow into the last bin. `hist` is zeroed
/// first; its length fixes the bin count.
///
/// Values below `lo` land in bin 0 (the float-to-usize cast saturates at
/// zero), matching the accumulation loop this replaces in
/// [`crate::otsu::otsu_threshold`].
///
/// # Panics
///
/// Panics if `hist` is empty.
pub fn histogram_into(data: &[f64], lo: f64, width: f64, hist: &mut [usize]) {
    assert!(!hist.is_empty(), "histogram needs at least one bin");
    let bins = hist.len();
    hist.iter_mut().for_each(|h| *h = 0);
    for &v in data {
        let mut bin = ((v - lo) / width) as usize;
        if bin >= bins {
            bin = bins - 1;
        }
        hist[bin] += 1;
    }
}

/// Rescales `data` linearly to `[0, 1]` into `out`; a (near-)constant
/// input (span `< 1e-15`) maps to all zeros. Matches
/// [`crate::grid::GridImage::normalized`].
pub fn normalize_unit_into(data: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let (lo, hi) = minmax(data);
    let span = hi - lo;
    if span < 1e-15 {
        out.resize(data.len(), 0.0);
        return;
    }
    out.reserve(data.len());
    out.extend(data.iter().map(|&v| (v - lo) / span));
}

/// Thresholds `data` into a boolean mask: `true` where `value > thresh`.
pub fn binarize_into(data: &[f64], thresh: f64, out: &mut Vec<bool>) {
    out.clear();
    out.reserve(data.len());
    out.extend(data.iter().map(|&v| v > thresh));
}

/// Orientation of the principal axis from central second moments, in
/// radians from the +column axis toward +row. Returns 0.0 for isotropic
/// shapes (both `2·µ_rc` and `µ_cc − µ_rr` below `1e-12`).
pub fn principal_orientation(mu_rr: f64, mu_cc: f64, mu_rc: f64) -> f64 {
    let num = 2.0 * mu_rc;
    let den = mu_cc - mu_rr;
    if num.abs() < 1e-12 && den.abs() < 1e-12 {
        return 0.0;
    }
    0.5 * num.atan2(den)
}

/// Centroid and central second moments of a row-major boolean mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskMoments {
    /// Number of foreground pixels.
    pub area: usize,
    /// Centroid `(row, col)` in pixel coordinates.
    pub centroid: (f64, f64),
    /// Central second moment µ_rr.
    pub mu_rr: f64,
    /// Central second moment µ_cc.
    pub mu_cc: f64,
    /// Central mixed moment µ_rc.
    pub mu_rc: f64,
}

/// Two-pass centroid + central-moment accumulation over a row-major mask
/// with `cols` columns, without materializing a foreground coordinate
/// list. Returns `None` for an all-background mask.
///
/// Both passes visit foreground pixels in row-major order — the same
/// accumulation order as the coordinate-list implementation it replaces
/// ([`reference::mask_moments`]), so the moments are bit-identical.
///
/// # Panics
///
/// Panics if `cols == 0` or `mask.len()` is not a multiple of `cols`.
pub fn mask_moments(mask: &[bool], cols: usize) -> Option<MaskMoments> {
    assert!(cols > 0, "mask needs at least one column");
    assert_eq!(mask.len() % cols, 0, "mask length not a multiple of cols");
    let mut n = 0usize;
    let mut sum_r = 0.0;
    let mut sum_c = 0.0;
    for (r, row) in mask.chunks_exact(cols).enumerate() {
        for (c, &on) in row.iter().enumerate() {
            if on {
                n += 1;
                sum_r += r as f64;
                sum_c += c as f64;
            }
        }
    }
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    let cr = sum_r / nf;
    let cc = sum_c / nf;
    let mut mu_rr = 0.0;
    let mut mu_cc = 0.0;
    let mut mu_rc = 0.0;
    for (r, row) in mask.chunks_exact(cols).enumerate() {
        for (c, &on) in row.iter().enumerate() {
            if on {
                let dr = r as f64 - cr;
                let dc = c as f64 - cc;
                mu_rr += dr * dr;
                mu_cc += dc * dc;
                mu_rc += dr * dc;
            }
        }
    }
    Some(MaskMoments {
        area: n,
        centroid: (cr, cc),
        mu_rr: mu_rr / nf,
        mu_cc: mu_cc / nf,
        mu_rc: mu_rc / nf,
    })
}

pub mod reference {
    //! Naive scalar reference implementations of every kernel.
    //!
    //! These are the pre-kernel code paths, kept verbatim so proptests can
    //! assert bitwise agreement and `kernel_bench` can time old vs. new.
    //! They allocate freely and make no attempt to be fast.

    /// Sum and sum-of-squares as two separate passes.
    pub fn sum_sumsq(data: &[f64]) -> (f64, f64) {
        (
            data.iter().sum::<f64>(),
            data.iter().map(|&x| x * x).sum::<f64>(),
        )
    }

    /// Min and max as two separate NaN-filtering folds.
    pub fn minmax(data: &[f64]) -> (f64, f64) {
        (crate::stats::min(data), crate::stats::max(data))
    }

    /// Allocating centered moving average (the original
    /// `filter::moving_average` body).
    pub fn moving_average(data: &[f64], half: usize) -> Vec<f64> {
        if half == 0 || data.is_empty() {
            return data.to_vec();
        }
        let n = data.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let window = &data[lo..hi];
            out.push(window.iter().sum::<f64>() / window.len() as f64);
        }
        out
    }

    /// Allocating windowed standard deviation (map-collect).
    pub fn windowed_std(data: &[f64], half: usize) -> Vec<f64> {
        let n = data.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                crate::stats::std_dev(&data[lo..hi])
            })
            .collect()
    }

    /// Allocating windowed RMS (map-collect).
    pub fn windowed_rms(data: &[f64], half: usize) -> Vec<f64> {
        let n = data.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                crate::stats::rms(&data[lo..hi])
            })
            .collect()
    }

    /// Allocating windowed minimum (map-collect erosion).
    pub fn windowed_min(data: &[f64], half: usize) -> Vec<f64> {
        let n = data.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                data[lo..hi].iter().cloned().fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Allocating centered median filter (the original
    /// `filter::median_filter` body over `stats::median`).
    pub fn median_filter(data: &[f64], half: usize) -> Vec<f64> {
        if half == 0 || data.is_empty() {
            return data.to_vec();
        }
        let n = data.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            out.push(crate::stats::median(&data[lo..hi]));
        }
        out
    }

    /// Per-grid-point binary-search linear resampling (the pre-cursor
    /// implementation).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn resample_linear(times: &[f64], values: &[f64], dt: f64) -> (Vec<f64>, Vec<f64>) {
        assert!(dt > 0.0, "resample interval must be positive");
        let mut out_t = Vec::new();
        let mut out_v = Vec::new();
        if times.len() < 2 {
            return (out_t, out_v);
        }
        let start = times[0];
        let end = *times.last().expect("nonempty");
        let mut t = start;
        while t <= end + 1e-12 {
            let tc = t.min(end);
            let idx = times.partition_point(|&x| x < tc);
            let v = if idx < times.len() && times[idx] == tc {
                values[idx]
            } else {
                let (t0, t1) = (times[idx - 1], times[idx]);
                let (v0, v1) = (values[idx - 1], values[idx]);
                if t1 == t0 {
                    v1
                } else {
                    let frac = (tc - t0) / (t1 - t0);
                    v0 + frac * (v1 - v0)
                }
            };
            out_t.push(tc);
            out_v.push(v);
            t += dt;
        }
        (out_t, out_v)
    }

    /// Allocating histogram accumulation (the original loop in
    /// `otsu::otsu_threshold`).
    pub fn histogram(data: &[f64], lo: f64, width: f64, bins: usize) -> Vec<usize> {
        let mut hist = vec![0usize; bins];
        for &v in data {
            let mut bin = ((v - lo) / width) as usize;
            if bin >= bins {
                bin = bins - 1;
            }
            hist[bin] += 1;
        }
        hist
    }

    /// Allocating unit normalization (the original `GridImage::normalized`
    /// body).
    pub fn normalize_unit(data: &[f64]) -> Vec<f64> {
        let lo = crate::stats::min(data);
        let hi = crate::stats::max(data);
        let span = hi - lo;
        if span < 1e-15 {
            vec![0.0; data.len()]
        } else {
            data.iter().map(|&v| (v - lo) / span).collect()
        }
    }

    /// Allocating threshold mask.
    pub fn binarize(data: &[f64], thresh: f64) -> Vec<bool> {
        data.iter().map(|&v| v > thresh).collect()
    }

    /// Mask moments via a materialized foreground coordinate list (the
    /// original `BinaryGrid::moments` body).
    pub fn mask_moments(mask: &[bool], cols: usize) -> Option<super::MaskMoments> {
        let mut fg = Vec::new();
        for (r, row) in mask.chunks_exact(cols).enumerate() {
            for (c, &on) in row.iter().enumerate() {
                if on {
                    fg.push((r, c));
                }
            }
        }
        if fg.is_empty() {
            return None;
        }
        let n = fg.len() as f64;
        let cr = fg.iter().map(|p| p.0 as f64).sum::<f64>() / n;
        let cc = fg.iter().map(|p| p.1 as f64).sum::<f64>() / n;
        let mut mu_rr = 0.0;
        let mut mu_cc = 0.0;
        let mut mu_rc = 0.0;
        for &(r, c) in &fg {
            let dr = r as f64 - cr;
            let dc = c as f64 - cc;
            mu_rr += dr * dr;
            mu_cc += dc * dc;
            mu_rc += dr * dc;
        }
        Some(super::MaskMoments {
            area: fg.len(),
            centroid: (cr, cc),
            mu_rr: mu_rr / n,
            mu_cc: mu_cc / n,
            mu_rc: mu_rc / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn empty_and_single_element_edges() {
        let mut sort = Vec::new();
        let mut out = Vec::new();
        assert_eq!(sum_sumsq(&[]), (0.0, 0.0));
        assert_eq!(minmax(&[]), (f64::INFINITY, f64::NEG_INFINITY));
        assert_eq!(median_of_window(&[], &mut sort), 0.0);
        assert_eq!(median_of_window(&[7.0], &mut sort), 7.0);
        moving_average_into(&[], 3, &mut out);
        assert!(out.is_empty());
        moving_average_into(&[5.0], 3, &mut out);
        assert_eq!(out, vec![5.0]);
        windowed_std_into(&[], 2, &mut out);
        assert!(out.is_empty());
        windowed_min_into(&[4.0], 2, &mut out);
        assert_eq!(out, vec![4.0]);
        let (mut t, mut v) = (Vec::new(), Vec::new());
        resample_linear_into(&[1.0], &[2.0], 0.1, &mut t, &mut v);
        assert!(t.is_empty() && v.is_empty());
        normalize_unit_into(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(mask_moments(&[false, false], 2), None);
    }

    #[test]
    fn odd_length_median_window() {
        let mut sort = Vec::new();
        assert_eq!(median_of_window(&[3.0, 1.0, 2.0], &mut sort), 2.0);
        assert_eq!(median_of_window(&[4.0, 1.0, 2.0, 3.0], &mut sort), 2.5);
    }

    #[test]
    fn scratch_clear_keeps_capacity() {
        let mut s = Scratch::new();
        s.a.extend_from_slice(&[1.0; 64]);
        s.runs.push((1, 2));
        let cap = s.a.capacity();
        s.clear();
        assert!(s.a.is_empty() && s.runs.is_empty());
        assert_eq!(s.a.capacity(), cap);
    }

    #[test]
    fn outputs_are_cleared_before_reuse() {
        let mut out = vec![99.0; 8];
        moving_average_into(&[1.0, 2.0], 1, &mut out);
        assert_eq!(out.len(), 2);
        let mut mask = vec![true; 8];
        binarize_into(&[1.0, 2.0], 1.5, &mut mask);
        assert_eq!(mask, vec![false, true]);
    }

    proptest! {
        #[test]
        fn sum_sumsq_matches_reference(data in prop::collection::vec(-1e3f64..1e3, 0..100)) {
            let (s, q) = sum_sumsq(&data);
            let (rs, rq) = reference::sum_sumsq(&data);
            prop_assert_eq!(s.to_bits(), rs.to_bits());
            prop_assert_eq!(q.to_bits(), rq.to_bits());
        }

        #[test]
        fn minmax_matches_reference(data in prop::collection::vec(-1e3f64..1e3, 0..100)) {
            let (lo, hi) = minmax(&data);
            let (rlo, rhi) = reference::minmax(&data);
            prop_assert_eq!(lo.to_bits(), rlo.to_bits());
            prop_assert_eq!(hi.to_bits(), rhi.to_bits());
        }

        #[test]
        fn moving_average_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 0..100),
            half in 0usize..8,
        ) {
            let mut out = Vec::new();
            moving_average_into(&data, half, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference::moving_average(&data, half)));
        }

        #[test]
        fn windowed_std_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 0..100),
            half in 0usize..8,
        ) {
            let mut out = Vec::new();
            windowed_std_into(&data, half, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference::windowed_std(&data, half)));
        }

        #[test]
        fn windowed_rms_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 0..100),
            half in 0usize..8,
        ) {
            let mut out = Vec::new();
            windowed_rms_into(&data, half, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference::windowed_rms(&data, half)));
        }

        #[test]
        fn windowed_min_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 0..100),
            half in 0usize..8,
        ) {
            let mut out = Vec::new();
            windowed_min_into(&data, half, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference::windowed_min(&data, half)));
        }

        #[test]
        fn median_filter_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 0..100),
            half in 0usize..8,
        ) {
            let mut sort = Vec::new();
            let mut out = Vec::new();
            median_filter_into(&data, half, &mut sort, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference::median_filter(&data, half)));
        }

        #[test]
        fn median_of_window_matches_stats_median(
            data in prop::collection::vec(-1e3f64..1e3, 0..40),
        ) {
            let mut sort = Vec::new();
            let ours = median_of_window(&data, &mut sort);
            prop_assert_eq!(ours.to_bits(), crate::stats::median(&data).to_bits());
        }

        #[test]
        fn resample_matches_reference(
            steps in prop::collection::vec((0.0f64..0.3, -10.0f64..10.0), 0..60),
            dt in 0.01f64..0.5,
        ) {
            let mut t = 0.0;
            let mut times = Vec::new();
            let mut values = Vec::new();
            for &(step, v) in &steps {
                times.push(t);
                values.push(v);
                t += step;
            }
            let (mut ot, mut ov) = (Vec::new(), Vec::new());
            resample_linear_into(&times, &values, dt, &mut ot, &mut ov);
            let (rt, rv) = reference::resample_linear(&times, &values, dt);
            prop_assert_eq!(bits(&ot), bits(&rt));
            prop_assert_eq!(bits(&ov), bits(&rv));
        }

        #[test]
        fn histogram_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 1..200),
            bins in 1usize..64,
        ) {
            let (lo, hi) = minmax(&data);
            let width = ((hi - lo) / bins as f64).max(1e-9);
            let mut hist = vec![0usize; bins];
            histogram_into(&data, lo, width, &mut hist);
            prop_assert_eq!(hist, reference::histogram(&data, lo, width, bins));
        }

        #[test]
        fn normalize_matches_reference(data in prop::collection::vec(-1e3f64..1e3, 0..100)) {
            let mut out = Vec::new();
            normalize_unit_into(&data, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference::normalize_unit(&data)));
        }

        #[test]
        fn binarize_matches_reference(
            data in prop::collection::vec(-1e3f64..1e3, 0..100),
            thresh in -1e3f64..1e3,
        ) {
            let mut out = Vec::new();
            binarize_into(&data, thresh, &mut out);
            prop_assert_eq!(&out, &reference::binarize(&data, thresh));
        }

        #[test]
        fn mask_moments_matches_reference(
            mask in prop::collection::vec(any::<bool>(), 1..120),
            cols in 1usize..12,
        ) {
            let len = (mask.len() / cols) * cols;
            let mask = &mask[..len];
            let ours = mask_moments(mask, cols);
            let theirs = reference::mask_moments(mask, cols);
            match (ours, theirs) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.area, b.area);
                    prop_assert_eq!(a.centroid.0.to_bits(), b.centroid.0.to_bits());
                    prop_assert_eq!(a.centroid.1.to_bits(), b.centroid.1.to_bits());
                    prop_assert_eq!(a.mu_rr.to_bits(), b.mu_rr.to_bits());
                    prop_assert_eq!(a.mu_cc.to_bits(), b.mu_cc.to_bits());
                    prop_assert_eq!(a.mu_rc.to_bits(), b.mu_rc.to_bits());
                }
                (a, b) => prop_assert!(false, "presence mismatch: {:?} vs {:?}", a, b),
            }
        }
    }
}
