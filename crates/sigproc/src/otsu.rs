//! Otsu's clustering-based threshold selection.
//!
//! RFIPad (§III-A3) renders the per-tag accumulative phase differences as a
//! gray-scale image and binarizes it with Otsu's method: the threshold that
//! maximizes the between-class variance of foreground vs. background pixels.
//! The `1` pixels then mark the tags the hand moved over.

/// Number of histogram bins used when thresholding continuous data.
pub const OTSU_BINS: usize = 256;

/// Computes the Otsu threshold of a set of continuous gray values.
///
/// The data is histogrammed into [`OTSU_BINS`] equal-width bins between its
/// minimum and maximum, and the classic between-class-variance maximization
/// is run over the histogram. The returned threshold is the *upper edge* of
/// the chosen bin, so `value > threshold` selects the foreground class.
///
/// Returns `None` when the input is empty or all values are (nearly) equal,
/// in which case no meaningful two-class split exists.
///
/// # Example
///
/// ```
/// use sigproc::otsu::otsu_threshold;
///
/// // Two well-separated clusters around 0 and 10.
/// let data: Vec<f64> = (0..50).map(|i| (i % 5) as f64 * 0.1)
///     .chain((0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1)).collect();
/// let t = otsu_threshold(&data).unwrap();
/// assert!(t > 0.5 && t < 10.0);
/// ```
pub fn otsu_threshold(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let (lo, hi) = crate::kernel::minmax(data);
    if !(hi - lo).is_finite() || (hi - lo) < 1e-12 {
        return None;
    }
    let width = (hi - lo) / OTSU_BINS as f64;
    let mut hist = [0usize; OTSU_BINS];
    crate::kernel::histogram_into(data, lo, width, &mut hist);
    let bin_index = otsu_threshold_histogram(&hist)?;
    // Upper edge of the selected bin: foreground is strictly above.
    Some(lo + (bin_index as f64 + 1.0) * width)
}

/// Runs Otsu's method directly on a histogram, returning the bin index `k`
/// that maximizes between-class variance for the split `bins[0..=k]` vs.
/// `bins[k+1..]`.
///
/// Returns `None` if the histogram has fewer than two non-empty bins.
pub fn otsu_threshold_histogram(hist: &[usize]) -> Option<usize> {
    let total: usize = hist.iter().sum();
    if total == 0 || hist.iter().filter(|&&c| c > 0).count() < 2 {
        return None;
    }
    let total_f = total as f64;
    let global_sum: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum();

    let mut w0 = 0.0; // background weight
    let mut sum0 = 0.0; // background intensity sum
    let mut best_var = -1.0;
    // Ties (e.g. a run of empty bins between two clusters) are averaged, the
    // conventional resolution that places the threshold mid-gap.
    let mut tie_sum = 0usize;
    let mut tie_count = 0usize;
    // The last bin cannot be a split point (foreground would be empty).
    for (k, &count) in hist.iter().enumerate().take(hist.len() - 1) {
        w0 += count as f64;
        if w0 == 0.0 {
            continue;
        }
        let w1 = total_f - w0;
        if w1 == 0.0 {
            break;
        }
        sum0 += k as f64 * count as f64;
        let mu0 = sum0 / w0;
        let mu1 = (global_sum - sum0) / w1;
        let between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
        if between > best_var * (1.0 + 1e-12) {
            best_var = between;
            tie_sum = k;
            tie_count = 1;
        } else if (between - best_var).abs() <= best_var.abs() * 1e-12 {
            tie_sum += k;
            tie_count += 1;
        }
    }
    (tie_count > 0).then(|| tie_sum / tie_count)
}

/// Binarizes data with the Otsu threshold: `true` where `value > threshold`.
///
/// If no threshold exists (uniform or empty data), every element maps to
/// `false` — a uniform image contains no foreground.
pub fn otsu_binarize(data: &[f64]) -> Vec<bool> {
    let mut mask = Vec::new();
    match otsu_threshold(data) {
        Some(t) => crate::kernel::binarize_into(data, t, &mut mask),
        None => mask.resize(data.len(), false),
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_has_no_threshold() {
        assert_eq!(otsu_threshold(&[]), None);
    }

    #[test]
    fn uniform_data_has_no_threshold() {
        assert_eq!(otsu_threshold(&[3.0; 20]), None);
    }

    #[test]
    fn two_clusters_split_between() {
        let mut data = vec![0.0; 40];
        data.extend(vec![1.0; 10]);
        let t = otsu_threshold(&data).expect("bimodal");
        assert!(t > 0.0 && t < 1.0, "threshold {t}");
        let mask = otsu_binarize(&data);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 10);
    }

    #[test]
    fn noisy_clusters_still_split() {
        // Deterministic pseudo-noise around 0 and around 5.
        let data: Vec<f64> = (0..200)
            .map(|i| {
                let noise = ((i * 37 % 17) as f64 - 8.0) * 0.02;
                if i % 4 == 0 {
                    5.0 + noise
                } else {
                    noise
                }
            })
            .collect();
        let t = otsu_threshold(&data).expect("bimodal");
        assert!(t > 0.5 && t < 4.5);
        let mask = otsu_binarize(&data);
        let fg = mask.iter().filter(|&&m| m).count();
        assert_eq!(fg, 50);
    }

    #[test]
    fn histogram_variant_matches_known_split() {
        // 10 counts at bin 0, 10 at bin 9: any split between works; Otsu
        // should put k somewhere in 0..9.
        let mut hist = [0usize; 10];
        hist[0] = 10;
        hist[9] = 10;
        let k = otsu_threshold_histogram(&hist).expect("two classes");
        assert!(k < 9);
    }

    #[test]
    fn histogram_single_bin_is_none() {
        let mut hist = [0usize; 10];
        hist[4] = 100;
        assert_eq!(otsu_threshold_histogram(&hist), None);
    }

    #[test]
    fn binarize_uniform_is_all_background() {
        let mask = otsu_binarize(&[2.0; 8]);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn threshold_separates_unbalanced_clusters() {
        // 95% background, 5% foreground — the RFIPad case: few "hot" tags.
        let mut data = vec![0.1; 95];
        data.extend(vec![9.0; 5]);
        let t = otsu_threshold(&data).expect("bimodal");
        let fg: Vec<bool> = data.iter().map(|&v| v > t).collect();
        assert_eq!(fg.iter().filter(|&&m| m).count(), 5);
    }

    #[test]
    fn negative_values_supported() {
        let mut data = vec![-5.0; 30];
        data.extend(vec![5.0; 30]);
        let t = otsu_threshold(&data).expect("bimodal");
        assert!(t > -5.0 && t < 5.0);
    }
}
