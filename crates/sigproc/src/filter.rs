//! Smoothing filters and trough (local-minimum) detection.
//!
//! RFIPad's direction estimator looks for the distinct RSS *trough* each tag
//! shows when the hand passes directly over it (§III-B). The raw RSS stream
//! is noisy and quantized, so troughs are found on a smoothed copy and then
//! validated by their prominence.

use serde::{Deserialize, Serialize};

/// Centered moving-average filter with window `2*half + 1`, shrinking the
/// window at the edges. `half == 0` returns the input unchanged.
///
/// # Example
///
/// ```
/// use sigproc::filter::moving_average;
///
/// let smoothed = moving_average(&[0.0, 10.0, 0.0], 1);
/// assert!((smoothed[1] - 10.0 / 3.0).abs() < 1e-12);
/// ```
pub fn moving_average(data: &[f64], half: usize) -> Vec<f64> {
    let mut out = Vec::new();
    crate::kernel::moving_average_into(data, half, &mut out);
    out
}

/// Centered median filter with window `2*half + 1`, shrinking at the edges.
/// Robust to the impulse noise of quantized RSS readings.
///
/// Thin wrapper over [`crate::kernel::median_filter_into`]; callers on a
/// hot path should use that directly with reusable buffers.
pub fn median_filter(data: &[f64], half: usize) -> Vec<f64> {
    let mut sort = Vec::new();
    let mut out = Vec::new();
    crate::kernel::median_filter_into(data, half, &mut sort, &mut out);
    out
}

/// First-order exponential smoothing: `y[i] = α·x[i] + (1-α)·y[i-1]`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]`.
pub fn exponential_smooth(data: &[f64], alpha: f64) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(data.len());
    let mut prev = None;
    for &x in data {
        let y = match prev {
            None => x,
            Some(p) => alpha * x + (1.0 - alpha) * p,
        };
        out.push(y);
        prev = Some(y);
    }
    out
}

/// A detected local minimum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trough {
    /// Index of the minimum in the input slice.
    pub index: usize,
    /// Value at the minimum.
    pub value: f64,
    /// Prominence: how far the signal rises above the trough on the lower of
    /// its two sides before reaching a deeper minimum or the signal edge.
    pub prominence: f64,
}

/// Finds local minima with at least the requested prominence, separated by at
/// least `min_separation` samples. When two candidate troughs are closer than
/// `min_separation`, the deeper one wins.
///
/// Returns troughs ordered by index.
///
/// # Example
///
/// ```
/// use sigproc::filter::find_troughs;
///
/// let signal = [0.0, -1.0, 0.0, 0.2, -3.0, 0.1];
/// let troughs = find_troughs(&signal, 0.5, 1);
/// assert_eq!(troughs.len(), 2);
/// assert_eq!(troughs[1].index, 4);
/// ```
pub fn find_troughs(data: &[f64], min_prominence: f64, min_separation: usize) -> Vec<Trough> {
    let n = data.len();
    if n < 3 {
        return Vec::new();
    }
    // Candidate minima: strictly below both neighbours (plateaus take the
    // first index of the flat run).
    let mut candidates = Vec::new();
    let mut i = 1;
    while i < n - 1 {
        if data[i] > data[i - 1] {
            i += 1;
            continue;
        }
        if data[i] == data[i - 1] {
            i += 1;
            continue;
        }
        // data[i] < data[i-1]; extend through any plateau.
        let start = i;
        let mut j = i;
        while j + 1 < n && data[j + 1] == data[j] {
            j += 1;
        }
        if j + 1 < n && data[j + 1] > data[j] {
            candidates.push(start);
        }
        i = j + 1;
    }

    let mut troughs: Vec<Trough> = candidates
        .into_iter()
        .filter_map(|idx| {
            let p = prominence_at(data, idx);
            (p >= min_prominence).then_some(Trough {
                index: idx,
                value: data[idx],
                prominence: p,
            })
        })
        .collect();

    // Enforce minimum separation, keeping deeper troughs.
    troughs.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("NaN in trough data"));
    let mut kept: Vec<Trough> = Vec::new();
    for t in troughs {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(t.index) > min_separation)
        {
            kept.push(t);
        }
    }
    kept.sort_by_key(|t| t.index);
    kept
}

/// Returns the single most prominent trough, if any trough exists at all
/// (prominence threshold 0).
pub fn deepest_trough(data: &[f64]) -> Option<Trough> {
    find_troughs(data, 0.0, 0).into_iter().max_by(|a, b| {
        a.prominence
            .partial_cmp(&b.prominence)
            .expect("NaN prominence")
    })
}

/// Prominence of a minimum at `idx`: for each side, walk outward until the
/// signal drops below `data[idx]` (or the edge); the side's height is the
/// maximum seen on that walk minus `data[idx]`. Prominence is the smaller of
/// the two side heights.
fn prominence_at(data: &[f64], idx: usize) -> f64 {
    let v = data[idx];
    let mut left_max = f64::NEG_INFINITY;
    for j in (0..idx).rev() {
        if data[j] < v {
            break;
        }
        left_max = left_max.max(data[j]);
    }
    let mut right_max = f64::NEG_INFINITY;
    for &x in &data[idx + 1..] {
        if x < v {
            break;
        }
        right_max = right_max.max(x);
    }
    if left_max == f64::NEG_INFINITY && right_max == f64::NEG_INFINITY {
        return 0.0;
    }
    // An edge side with no rise counts as unbounded so the other side decides.
    let l = if left_max == f64::NEG_INFINITY {
        f64::INFINITY
    } else {
        left_max - v
    };
    let r = if right_max == f64::NEG_INFINITY {
        f64::INFINITY
    } else {
        right_max - v
    };
    let p = l.min(r);
    if p.is_infinite() {
        // Both sides unbounded cannot happen (one would have returned 0.0
        // above); a single unbounded side falls back to the bounded side.
        0.0
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_identity_when_half_zero() {
        let d = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&d, 0), d.to_vec());
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let d = [0.0, 0.0, 9.0, 0.0, 0.0];
        let s = moving_average(&d, 1);
        assert!((s[2] - 3.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert_eq!(s[0], 0.0);
    }

    #[test]
    fn moving_average_preserves_constant() {
        let d = [4.0; 10];
        assert!(moving_average(&d, 3)
            .iter()
            .all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn median_filter_removes_impulse() {
        let d = [1.0, 1.0, 100.0, 1.0, 1.0];
        let s = median_filter(&d, 1);
        assert_eq!(s[2], 1.0);
    }

    #[test]
    fn exponential_smooth_alpha_one_is_identity() {
        let d = [3.0, 1.0, 4.0];
        assert_eq!(exponential_smooth(&d, 1.0), d.to_vec());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn exponential_smooth_rejects_zero_alpha() {
        exponential_smooth(&[1.0], 0.0);
    }

    #[test]
    fn single_v_trough_detected() {
        let d = [3.0, 2.0, 1.0, 2.0, 3.0];
        let t = find_troughs(&d, 0.5, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].index, 2);
        assert_eq!(t[0].value, 1.0);
        assert!((t[0].prominence - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_trough_in_monotone_signal() {
        let d: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(find_troughs(&d, 0.0, 0).is_empty());
    }

    #[test]
    fn shallow_trough_filtered_by_prominence() {
        let d = [1.0, 0.95, 1.0, 0.0, 1.0];
        let t = find_troughs(&d, 0.5, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].index, 3);
    }

    #[test]
    fn plateau_trough_detected_once() {
        let d = [2.0, 1.0, 1.0, 1.0, 2.0];
        let t = find_troughs(&d, 0.5, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].index, 1);
    }

    #[test]
    fn min_separation_keeps_deeper() {
        let d = [3.0, 1.0, 2.5, 0.5, 3.0];
        let t = find_troughs(&d, 0.1, 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].index, 3); // the deeper of the two close troughs
    }

    #[test]
    fn separated_troughs_both_kept() {
        let mut d = vec![3.0; 21];
        d[5] = 0.0;
        d[15] = 0.5;
        let t = find_troughs(&d, 1.0, 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].index, 5);
        assert_eq!(t[1].index, 15);
    }

    #[test]
    fn deepest_trough_picks_most_prominent() {
        let d = [3.0, 2.0, 3.0, 0.0, 3.0];
        let t = deepest_trough(&d).expect("has troughs");
        assert_eq!(t.index, 3);
    }

    #[test]
    fn deepest_trough_none_for_short_input() {
        assert!(deepest_trough(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn rss_like_signal_single_trough() {
        // Simulated RSS dip when the hand passes over a tag at sample 50.
        let d: Vec<f64> = (0..100)
            .map(|i| {
                let x = (i as f64 - 50.0) / 10.0;
                -41.0 - 8.0 * (-x * x).exp()
            })
            .collect();
        let t = find_troughs(&d, 2.0, 5);
        assert_eq!(t.len(), 1);
        assert!((t[0].index as i64 - 50).abs() <= 1);
    }
}
