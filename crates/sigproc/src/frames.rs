//! Fixed-duration framing and windowing of multi-stream signals.
//!
//! The RFIPad paper (§III-C1) mitigates the uneven sampling of tag reads by
//! cutting the per-tag phase streams into non-overlapping 100 ms *frames*,
//! computing a multi-tag RMS per frame (Eq. 11):
//!
//! ```text
//! rms(f) = Σ_{i=1..M} sqrt( Σ_{j=1..n} p_ij² / n )
//! ```
//!
//! and then grouping several successive frames into a *window* (default
//! 0.5 s = 5 frames) whose `std(rms(w))` is compared against a threshold
//! (Eq. 12) to decide whether a stroke is in progress.

use crate::series::TimeSeries;
use crate::stats;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Workspace-wide count of frames cut by [`FrameSeq::build`] and
/// [`FrameBuilder::build`], registered in the process-global metric
/// registry. The `Arc` is cached so steady-state framing costs one relaxed
/// atomic add.
fn frames_built_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| {
        obs::registry().counter(
            "sigproc_frames_built_total",
            "Fixed-duration frames cut from per-tag streams (Eq. 11 framing).",
            &[],
        )
    })
}

/// One fixed-duration frame aggregating all streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame start time in seconds.
    pub start: f64,
    /// Frame duration in seconds.
    pub duration: f64,
    /// Multi-stream RMS of the frame (paper Eq. 11).
    pub rms: f64,
    /// Total number of samples that fell into the frame, across streams.
    pub samples: usize,
}

impl Frame {
    /// Frame end time in seconds.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// A sequence of equally long, non-overlapping frames.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameSeq {
    frames: Vec<Frame>,
}

impl FrameSeq {
    /// Cuts the given per-stream time series into frames of `frame_len`
    /// seconds spanning `[start, end)` and computes the multi-stream RMS of
    /// each (paper Eq. 11). Streams with no samples in a frame contribute
    /// nothing to that frame's RMS.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len <= 0` or `end < start`.
    pub fn build(streams: &[TimeSeries], start: f64, end: f64, frame_len: f64) -> Self {
        Self::build_with_floors(streams, None, start, end, frame_len)
    }

    /// Like [`build`](Self::build), but subtracts a per-stream noise floor
    /// from each stream's frame RMS before summing (clamped at zero):
    /// `rms(f) = Σ_i max(0, rms_i(f) − floor_i)`.
    ///
    /// With floors set to each stream's static noise level, the result is an
    /// *excess* RMS that stays near zero in any environment and rises only
    /// with genuine signal — making activity thresholds environment-robust.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len <= 0`, `end < start`, or `floors` is provided
    /// with a length different from `streams`.
    pub fn build_with_floors(
        streams: &[TimeSeries],
        floors: Option<&[f64]>,
        start: f64,
        end: f64,
        frame_len: f64,
    ) -> Self {
        assert!(frame_len > 0.0, "frame length must be positive");
        assert!(end >= start, "frame range end before start");
        if let Some(f) = floors {
            assert_eq!(f.len(), streams.len(), "one floor per stream");
        }
        let count = ((end - start) / frame_len).ceil() as usize;
        let mut frames = Vec::with_capacity(count);
        for k in 0..count {
            let f_start = start + k as f64 * frame_len;
            let f_end = f_start + frame_len;
            let mut rms_sum = 0.0;
            let mut samples = 0;
            for (i, stream) in streams.iter().enumerate() {
                let part = stream.slice_time(f_start, f_end);
                if !part.is_empty() {
                    let floor = floors.map(|f| f[i]).unwrap_or(0.0);
                    rms_sum += (stats::rms(part.values()) - floor).max(0.0);
                    samples += part.len();
                }
            }
            frames.push(Frame {
                start: f_start,
                duration: frame_len,
                rms: rms_sum,
                samples,
            });
        }
        frames_built_counter().add(frames.len() as u64);
        Self { frames }
    }

    /// The frames in time order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Removes all frames, keeping the allocated capacity (for use as a
    /// reusable buffer with [`FrameBuilder::build_into`]).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// The per-frame RMS values as a plain vector.
    pub fn rms_values(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.rms_values_into(&mut out);
        out
    }

    /// Like [`rms_values`](Self::rms_values), but reuses `out`'s allocation.
    pub fn rms_values_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.frames.len());
        out.extend(self.frames.iter().map(|f| f.rms));
    }

    /// Groups consecutive frames into non-overlapping windows of `size`
    /// frames (the paper's default is 5 frames = 0.5 s). A trailing partial
    /// window is kept if it has at least one frame.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn windows(&self, size: usize) -> Vec<Window> {
        let mut out = Vec::new();
        self.windows_into(size, &mut out);
        out
    }

    /// Like [`windows`](Self::windows), but recycles the `Window` slots
    /// already in `out` (each window's `frame_rms` buffer is cleared, not
    /// freed) and truncates any excess.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn windows_into(&self, size: usize, out: &mut Vec<Window>) {
        assert!(size > 0, "window size must be positive");
        let mut n = 0;
        for chunk in self.frames.chunks(size) {
            emit_window(chunk, out, &mut n);
        }
        out.truncate(n);
    }

    /// Sliding (overlapping) windows advancing one frame at a time. Useful
    /// for finer-grained segmentation boundaries than non-overlapping
    /// windows provide.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn sliding_windows(&self, size: usize) -> Vec<Window> {
        let mut out = Vec::new();
        self.sliding_windows_into(size, &mut out);
        out
    }

    /// Like [`sliding_windows`](Self::sliding_windows), but recycles the
    /// `Window` slots already in `out`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn sliding_windows_into(&self, size: usize, out: &mut Vec<Window>) {
        assert!(size > 0, "window size must be positive");
        let mut n = 0;
        if self.frames.len() < size {
            if !self.frames.is_empty() {
                emit_window(&self.frames, out, &mut n);
            }
        } else {
            for run in self.frames.windows(size) {
                emit_window(run, out, &mut n);
            }
        }
        out.truncate(n);
    }
}

/// Writes a window over `frames` into slot `*n` of `out`, reusing the slot
/// (and its `frame_rms` allocation) when one exists.
fn emit_window(frames: &[Frame], out: &mut Vec<Window>, n: &mut usize) {
    if let Some(slot) = out.get_mut(*n) {
        slot.assign(frames);
    } else {
        out.push(Window::from_frames(frames));
    }
    *n += 1;
}

/// Streaming counterpart of [`FrameSeq::build_with_floors`]: appending a
/// sample is O(1), and [`build`](Self::build) emits the frame sequence
/// without re-slicing any stream.
///
/// The output is **bit-identical** to a batch
/// [`FrameSeq::build_with_floors`] over the same samples because the
/// per-frame, per-stream sum of squares is accumulated in the same time
/// order that [`crate::stats::rms`] would visit a
/// [`slice_time`](TimeSeries::slice_time) slice, and frame emission walks
/// streams in the same index order.
///
/// Frames whose end lies at or before the newest sample time can no longer
/// receive samples (assuming non-decreasing push times); their `Frame` is
/// computed once and cached, so a steady-state `push*`/`build` cycle costs
/// O(new samples + live tail frames), not O(total frames). A push that does
/// land in an already-finalized frame (out-of-order feed) simply drops the
/// affected cache suffix and stays correct.
///
/// # Example
///
/// ```
/// use sigproc::frames::{FrameBuilder, FrameSeq};
/// use sigproc::series::TimeSeries;
///
/// let stream: TimeSeries = (0..30).map(|i| (i as f64 * 0.01, 1.5)).collect();
/// let mut builder = FrameBuilder::new(1, None, 0.0, 0.1);
/// for (t, v) in stream.iter() {
///     builder.push(0, t, v);
/// }
/// let streaming = builder.build(0.29);
/// let batch = FrameSeq::build(&[stream], 0.0, 0.29, 0.1);
/// assert_eq!(streaming, batch);
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    start: f64,
    frame_len: f64,
    floors: Option<Vec<f64>>,
    n_streams: usize,
    /// Per-frame, per-stream running sum of squared sample values, laid out
    /// frame-major (`k * n_streams + stream`). A flat structure-of-arrays
    /// instead of a `Vec` of per-frame structs so that opening a new frame
    /// is an amortized `resize`, not two fresh allocations.
    acc_sum_sq: Vec<f64>,
    /// Per-frame, per-stream sample counts, same layout as `acc_sum_sq`.
    acc_count: Vec<usize>,
    /// Finalized prefix of frames (no future sample can land in them).
    done: Vec<Frame>,
    /// Newest sample time seen so far.
    max_time: f64,
}

impl FrameBuilder {
    /// Creates a builder for `n_streams` streams with frames of `frame_len`
    /// seconds starting at `start`. `floors` are the per-stream noise floors
    /// (see [`FrameSeq::build_with_floors`]); `None` means no floors.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len <= 0` or `floors` is provided with a length
    /// different from `n_streams`.
    pub fn new(n_streams: usize, floors: Option<Vec<f64>>, start: f64, frame_len: f64) -> Self {
        assert!(frame_len > 0.0, "frame length must be positive");
        if let Some(f) = &floors {
            assert_eq!(f.len(), n_streams, "one floor per stream");
        }
        Self {
            start,
            frame_len,
            floors,
            n_streams,
            acc_sum_sq: Vec::new(),
            acc_count: Vec::new(),
            done: Vec::new(),
            max_time: f64::NEG_INFINITY,
        }
    }

    /// Rewinds the builder to an empty state with a new range `start`,
    /// keeping the stream count, floors, frame length, and — crucially —
    /// the accumulator allocations. A retention trim that rebuilds its
    /// framing cache can recycle a spare builder through this instead of
    /// allocating a fresh one.
    pub fn reset_anchor(&mut self, start: f64) {
        self.start = start;
        self.acc_sum_sq.clear();
        self.acc_count.clear();
        self.done.clear();
        self.max_time = f64::NEG_INFINITY;
    }

    /// The frame range start passed to [`new`](Self::new).
    pub fn start(&self) -> f64 {
        self.start
    }

    /// The frame length passed to [`new`](Self::new), seconds.
    pub fn frame_len(&self) -> f64 {
        self.frame_len
    }

    /// Newest sample time seen so far ([`f64::NEG_INFINITY`] before the
    /// first sample). Together with [`start`](Self::start) and
    /// [`frame_len`](Self::frame_len) this pins down which frames are
    /// settled — the state a checkpoint needs to verify a rebuilt builder
    /// against the one it snapshotted.
    pub fn max_time(&self) -> f64 {
        self.max_time
    }

    /// Number of finalized frames (the settled prefix no future monotone
    /// sample can change).
    pub fn frames_done(&self) -> usize {
        self.done.len()
    }

    /// Start time of frame `k`, with the exact rounding the batch build
    /// uses per frame.
    fn frame_start(&self, k: usize) -> f64 {
        self.start + k as f64 * self.frame_len
    }

    /// Appends one sample of stream `stream` at time `t`. Samples before
    /// `start` are ignored, exactly as they would fall outside every frame
    /// of the batch build.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn push(&mut self, stream: usize, t: f64, v: f64) {
        assert!(stream < self.n_streams, "stream index out of range");
        if t < self.start {
            return;
        }
        // The batch build tests membership per frame k as
        // `f_start <= t < f_start + frame_len`, with `f_start = start +
        // k * frame_len` rounded independently per frame — so consecutive
        // frames can overlap or leave a gap of an ulp at a boundary, and a
        // sample may fall in zero, one, or *two* frames. Replicate that
        // exactly: from the division estimate, walk down to the first frame
        // whose end lies after t, then accumulate into every frame whose
        // half-open range contains t.
        let est = ((t - self.start) / self.frame_len) as usize;
        let mut k = est;
        while k > 0 && self.frame_start(k - 1) + self.frame_len > t {
            k -= 1;
        }
        let mut first_touched = None;
        // In non-degenerate float ranges membership ends within a frame or
        // two of the estimate; the bound only guards against a frame_len
        // below the ulp of the timestamps, where frame starts stop
        // advancing.
        while self.frame_start(k) <= t && k <= est + 2 {
            if t < self.frame_start(k) + self.frame_len {
                first_touched.get_or_insert(k);
                let needed = (k + 1) * self.n_streams;
                if self.acc_count.len() < needed {
                    self.acc_sum_sq.resize(needed, 0.0);
                    self.acc_count.resize(needed, 0);
                }
                let idx = k * self.n_streams + stream;
                self.acc_sum_sq[idx] += v * v;
                self.acc_count[idx] += 1;
            }
            k += 1;
        }
        if let Some(first) = first_touched {
            if first < self.done.len() {
                self.done.truncate(first);
            }
        }
        if t > self.max_time {
            self.max_time = t;
        }
    }

    /// Emits frame `k` from the accumulators, mirroring the batch build's
    /// stream-order walk (empty streams contribute nothing).
    fn compute_frame(&self, k: usize) -> Frame {
        let f_start = self.start + k as f64 * self.frame_len;
        let mut rms_sum = 0.0;
        let mut samples = 0;
        let base = k * self.n_streams;
        if base < self.acc_count.len() {
            let counts = &self.acc_count[base..base + self.n_streams];
            let sums = &self.acc_sum_sq[base..base + self.n_streams];
            // Ascending stream index mirrors the batch build's stream walk,
            // so the rms_sum accumulation order (and bits) are unchanged.
            for (i, (&n, &ssq)) in counts.iter().zip(sums).enumerate() {
                if n > 0 {
                    let floor = self.floors.as_ref().map(|f| f[i]).unwrap_or(0.0);
                    rms_sum += ((ssq / n as f64).sqrt() - floor).max(0.0);
                    samples += n;
                }
            }
        }
        Frame {
            start: f_start,
            duration: self.frame_len,
            rms: rms_sum,
            samples,
        }
    }

    /// Builds the frame sequence spanning `[start, end)`, bit-identical to
    /// [`FrameSeq::build_with_floors`] over the same samples. May be called
    /// repeatedly with a growing `end` as more samples arrive.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn build(&mut self, end: f64) -> FrameSeq {
        let mut out = FrameSeq::default();
        self.build_into(end, &mut out);
        out
    }

    /// Like [`build`](Self::build), but reuses `out`'s allocation. The
    /// result is bit-identical to [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn build_into(&mut self, end: f64, out: &mut FrameSeq) {
        assert!(end >= self.start, "frame range end before start");
        let count = ((end - self.start) / self.frame_len).ceil() as usize;
        // Finalize frames that can no longer change: every future sample
        // arrives at `t >= max_time` in a monotone feed, so a frame ending
        // at or before `max_time` is settled (membership needs
        // `t < f_start + frame_len`, the same rounded expression as here).
        while self.frame_start(self.done.len()) + self.frame_len <= self.max_time {
            let frame = self.compute_frame(self.done.len());
            self.done.push(frame);
        }
        out.frames.clear();
        out.frames.reserve(count);
        out.frames.extend(self.done.iter().take(count).copied());
        for k in out.frames.len()..count {
            out.frames.push(self.compute_frame(k));
        }
        frames_built_counter().add(out.frames.len() as u64);
    }
}

/// A group of successive frames treated as one unit for stroke detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Window start time in seconds.
    pub start: f64,
    /// Window end time in seconds.
    pub end: f64,
    /// RMS of each member frame.
    pub frame_rms: Vec<f64>,
}

impl Window {
    /// Builds a window from a non-empty run of frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn from_frames(frames: &[Frame]) -> Self {
        assert!(!frames.is_empty(), "window needs at least one frame");
        Self {
            start: frames[0].start,
            end: frames.last().expect("nonempty").end(),
            frame_rms: frames.iter().map(|f| f.rms).collect(),
        }
    }

    /// Overwrites this window in place from a non-empty run of frames,
    /// reusing the `frame_rms` allocation. Equivalent to
    /// [`from_frames`](Self::from_frames).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn assign(&mut self, frames: &[Frame]) {
        assert!(!frames.is_empty(), "window needs at least one frame");
        self.start = frames[0].start;
        self.end = frames.last().expect("nonempty").end();
        self.frame_rms.clear();
        self.frame_rms.extend(frames.iter().map(|f| f.rms));
    }

    /// Standard deviation of the member frames' RMS — the paper's
    /// `std(rms(w))` (left side of Eq. 12).
    pub fn rms_std(&self) -> f64 {
        stats::std_dev(&self.frame_rms)
    }

    /// Mean of the member frames' RMS.
    pub fn rms_mean(&self) -> f64 {
        stats::mean(&self.frame_rms)
    }

    /// The paper's stroke-activity test (Eq. 12): `std(rms(w)) > thre`.
    pub fn is_active(&self, threshold: f64) -> bool {
        self.rms_std() > threshold
    }

    /// Window midpoint time.
    pub fn mid(&self) -> f64 {
        0.5 * (self.start + self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_stream(value: f64, n: usize, dt: f64) -> TimeSeries {
        (0..n).map(|i| (i as f64 * dt, value)).collect()
    }

    #[test]
    fn framing_covers_range() {
        let s = constant_stream(1.0, 100, 0.01); // 1 second of samples
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        assert_eq!(fs.len(), 10);
        assert!((fs.frames()[0].start).abs() < 1e-12);
        assert!((fs.frames()[9].end() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_signal_rms_equals_value() {
        let s = constant_stream(2.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        for f in fs.frames() {
            assert!((f.rms - 2.0).abs() < 1e-9, "frame rms {}", f.rms);
        }
    }

    #[test]
    fn multi_stream_rms_sums_across_streams() {
        // Eq. 11 sums per-tag RMS over tags: two constant streams of 1.0 and
        // 3.0 give frame RMS 4.0.
        let a = constant_stream(1.0, 50, 0.01);
        let b = constant_stream(3.0, 50, 0.01);
        let fs = FrameSeq::build(&[a, b], 0.0, 0.5, 0.1);
        for f in fs.frames() {
            assert!((f.rms - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_frame_has_zero_rms() {
        let s = constant_stream(1.0, 10, 0.01); // only first 0.1 s populated
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        assert!(fs.frames()[0].rms > 0.0);
        for f in &fs.frames()[1..] {
            assert_eq!(f.rms, 0.0);
            assert_eq!(f.samples, 0);
        }
    }

    #[test]
    fn windows_nonoverlapping_partition() {
        let s = constant_stream(1.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.windows(5);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].frame_rms.len(), 5);
        assert!((ws[0].end - ws[1].start).abs() < 1e-12);
    }

    #[test]
    fn trailing_partial_window_kept() {
        let s = constant_stream(1.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.windows(3); // 10 frames -> 3+3+3+1
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[3].frame_rms.len(), 1);
    }

    #[test]
    fn constant_window_is_inactive() {
        let s = constant_stream(5.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        for w in fs.windows(5) {
            assert!(w.rms_std() < 1e-9);
            assert!(!w.is_active(0.01));
        }
    }

    #[test]
    fn varying_window_is_active() {
        // Big RMS swing between frames -> active window.
        let mut s = TimeSeries::new();
        for i in 0..100 {
            let t = i as f64 * 0.01;
            let v = if ((t / 0.1) as usize).is_multiple_of(2) {
                0.1
            } else {
                5.0
            };
            s.push(t, v);
        }
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.windows(5);
        assert!(ws.iter().any(|w| w.is_active(0.5)));
    }

    #[test]
    fn sliding_windows_advance_one_frame() {
        let s = constant_stream(1.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.sliding_windows(5);
        assert_eq!(ws.len(), 6); // 10 - 5 + 1
        assert!((ws[1].start - fs.frames()[1].start).abs() < 1e-12);
    }

    #[test]
    fn sliding_windows_short_input() {
        let s = constant_stream(1.0, 10, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 0.1, 0.1);
        let ws = fs.sliding_windows(5);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].frame_rms.len(), 1);
    }

    #[test]
    #[should_panic(expected = "frame length must be positive")]
    fn zero_frame_len_panics() {
        FrameSeq::build(&[], 0.0, 1.0, 0.0);
    }

    /// Interleaves the streams' samples in global time order, the order a
    /// live feed would deliver them.
    fn push_interleaved(builder: &mut FrameBuilder, streams: &[TimeSeries]) {
        let mut samples: Vec<(f64, usize, f64)> = streams
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.iter().map(move |(t, v)| (t, i, v)))
            .collect();
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN times"));
        for (t, i, v) in samples {
            builder.push(i, t, v);
        }
    }

    #[test]
    fn builder_matches_batch_with_floors_and_ragged_spans() {
        // Stream 0 covers the whole second; stream 1 only a middle chunk.
        let a: TimeSeries = (0..100)
            .map(|i| (i as f64 * 0.01, (i as f64 * 0.37).sin() * 2.0))
            .collect();
        let b: TimeSeries = (30..60)
            .map(|i| (i as f64 * 0.01, (i as f64 * 0.53).cos() * 3.0))
            .collect();
        let floors = vec![0.4, 1.1];
        let batch =
            FrameSeq::build_with_floors(&[a.clone(), b.clone()], Some(&floors), 0.0, 0.99, 0.1);
        let mut builder = FrameBuilder::new(2, Some(floors), 0.0, 0.1);
        push_interleaved(&mut builder, &[a, b]);
        assert_eq!(builder.build(0.99), batch);
    }

    #[test]
    fn builder_incremental_builds_match_growing_batch() {
        let s: TimeSeries = (0..200)
            .map(|i| (i as f64 * 0.013, i as f64 * 0.1))
            .collect();
        let mut builder = FrameBuilder::new(1, None, 0.0, 0.1);
        let mut fed = TimeSeries::new();
        for (t, v) in s.iter() {
            builder.push(0, t, v);
            fed.push(t, v);
            let end = t;
            let batch = FrameSeq::build(&[fed.clone()], 0.0, end, 0.1);
            assert_eq!(builder.build(end), batch, "diverged at t={t}");
        }
    }

    #[test]
    fn builder_out_of_order_push_invalidates_finalized_prefix() {
        let mut builder = FrameBuilder::new(1, None, 0.0, 0.1);
        builder.push(0, 0.05, 1.0);
        builder.push(0, 0.95, 1.0);
        let _ = builder.build(1.0); // finalizes the early frames
        builder.push(0, 0.05, 3.0); // lands in finalized frame 0
        let batch: TimeSeries = [(0.05, 1.0), (0.05, 3.0), (0.95, 1.0)]
            .into_iter()
            .collect();
        // Note the batch stream must accumulate in the builder's push order
        // within the frame for bit-identity; (1.0, 3.0) here.
        assert_eq!(builder.build(1.0), FrameSeq::build(&[batch], 0.0, 1.0, 0.1));
    }

    #[test]
    fn builder_ignores_samples_before_start() {
        let mut builder = FrameBuilder::new(1, None, 1.0, 0.1);
        builder.push(0, 0.5, 9.0);
        builder.push(0, 1.05, 2.0);
        let s: TimeSeries = [(0.5, 9.0), (1.05, 2.0)].into_iter().collect();
        assert_eq!(builder.build(1.1), FrameSeq::build(&[s], 1.0, 1.1, 0.1));
    }

    #[test]
    fn builder_empty_build_spans_range() {
        let mut builder = FrameBuilder::new(2, None, 0.0, 0.1);
        let fs = builder.build(0.55);
        assert_eq!(fs.len(), 6);
        assert!(fs.frames().iter().all(|f| f.rms == 0.0 && f.samples == 0));
    }
}
