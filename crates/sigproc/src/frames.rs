//! Fixed-duration framing and windowing of multi-stream signals.
//!
//! The RFIPad paper (§III-C1) mitigates the uneven sampling of tag reads by
//! cutting the per-tag phase streams into non-overlapping 100 ms *frames*,
//! computing a multi-tag RMS per frame (Eq. 11):
//!
//! ```text
//! rms(f) = Σ_{i=1..M} sqrt( Σ_{j=1..n} p_ij² / n )
//! ```
//!
//! and then grouping several successive frames into a *window* (default
//! 0.5 s = 5 frames) whose `std(rms(w))` is compared against a threshold
//! (Eq. 12) to decide whether a stroke is in progress.

use crate::series::TimeSeries;
use crate::stats;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Workspace-wide count of frames cut by [`FrameSeq::build`], registered in
/// the process-global metric registry. The `Arc` is cached so steady-state
/// framing costs one relaxed atomic add.
fn frames_built_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| {
        obs::registry().counter(
            "sigproc_frames_built_total",
            "Fixed-duration frames cut from per-tag streams (Eq. 11 framing).",
            &[],
        )
    })
}

/// One fixed-duration frame aggregating all streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame start time in seconds.
    pub start: f64,
    /// Frame duration in seconds.
    pub duration: f64,
    /// Multi-stream RMS of the frame (paper Eq. 11).
    pub rms: f64,
    /// Total number of samples that fell into the frame, across streams.
    pub samples: usize,
}

impl Frame {
    /// Frame end time in seconds.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// A sequence of equally long, non-overlapping frames.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameSeq {
    frames: Vec<Frame>,
}

impl FrameSeq {
    /// Cuts the given per-stream time series into frames of `frame_len`
    /// seconds spanning `[start, end)` and computes the multi-stream RMS of
    /// each (paper Eq. 11). Streams with no samples in a frame contribute
    /// nothing to that frame's RMS.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len <= 0` or `end < start`.
    pub fn build(streams: &[TimeSeries], start: f64, end: f64, frame_len: f64) -> Self {
        Self::build_with_floors(streams, None, start, end, frame_len)
    }

    /// Like [`build`](Self::build), but subtracts a per-stream noise floor
    /// from each stream's frame RMS before summing (clamped at zero):
    /// `rms(f) = Σ_i max(0, rms_i(f) − floor_i)`.
    ///
    /// With floors set to each stream's static noise level, the result is an
    /// *excess* RMS that stays near zero in any environment and rises only
    /// with genuine signal — making activity thresholds environment-robust.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len <= 0`, `end < start`, or `floors` is provided
    /// with a length different from `streams`.
    pub fn build_with_floors(
        streams: &[TimeSeries],
        floors: Option<&[f64]>,
        start: f64,
        end: f64,
        frame_len: f64,
    ) -> Self {
        assert!(frame_len > 0.0, "frame length must be positive");
        assert!(end >= start, "frame range end before start");
        if let Some(f) = floors {
            assert_eq!(f.len(), streams.len(), "one floor per stream");
        }
        let count = ((end - start) / frame_len).ceil() as usize;
        let mut frames = Vec::with_capacity(count);
        for k in 0..count {
            let f_start = start + k as f64 * frame_len;
            let f_end = f_start + frame_len;
            let mut rms_sum = 0.0;
            let mut samples = 0;
            for (i, stream) in streams.iter().enumerate() {
                let part = stream.slice_time(f_start, f_end);
                if !part.is_empty() {
                    let floor = floors.map(|f| f[i]).unwrap_or(0.0);
                    rms_sum += (stats::rms(part.values()) - floor).max(0.0);
                    samples += part.len();
                }
            }
            frames.push(Frame {
                start: f_start,
                duration: frame_len,
                rms: rms_sum,
                samples,
            });
        }
        frames_built_counter().add(frames.len() as u64);
        Self { frames }
    }

    /// The frames in time order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The per-frame RMS values as a plain vector.
    pub fn rms_values(&self) -> Vec<f64> {
        self.frames.iter().map(|f| f.rms).collect()
    }

    /// Groups consecutive frames into non-overlapping windows of `size`
    /// frames (the paper's default is 5 frames = 0.5 s). A trailing partial
    /// window is kept if it has at least one frame.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn windows(&self, size: usize) -> Vec<Window> {
        assert!(size > 0, "window size must be positive");
        self.frames.chunks(size).map(Window::from_frames).collect()
    }

    /// Sliding (overlapping) windows advancing one frame at a time. Useful
    /// for finer-grained segmentation boundaries than non-overlapping
    /// windows provide.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn sliding_windows(&self, size: usize) -> Vec<Window> {
        assert!(size > 0, "window size must be positive");
        if self.frames.len() < size {
            if self.frames.is_empty() {
                return Vec::new();
            }
            return vec![Window::from_frames(&self.frames)];
        }
        self.frames.windows(size).map(Window::from_frames).collect()
    }
}

/// A group of successive frames treated as one unit for stroke detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Window start time in seconds.
    pub start: f64,
    /// Window end time in seconds.
    pub end: f64,
    /// RMS of each member frame.
    pub frame_rms: Vec<f64>,
}

impl Window {
    /// Builds a window from a non-empty run of frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn from_frames(frames: &[Frame]) -> Self {
        assert!(!frames.is_empty(), "window needs at least one frame");
        Self {
            start: frames[0].start,
            end: frames.last().expect("nonempty").end(),
            frame_rms: frames.iter().map(|f| f.rms).collect(),
        }
    }

    /// Standard deviation of the member frames' RMS — the paper's
    /// `std(rms(w))` (left side of Eq. 12).
    pub fn rms_std(&self) -> f64 {
        stats::std_dev(&self.frame_rms)
    }

    /// Mean of the member frames' RMS.
    pub fn rms_mean(&self) -> f64 {
        stats::mean(&self.frame_rms)
    }

    /// The paper's stroke-activity test (Eq. 12): `std(rms(w)) > thre`.
    pub fn is_active(&self, threshold: f64) -> bool {
        self.rms_std() > threshold
    }

    /// Window midpoint time.
    pub fn mid(&self) -> f64 {
        0.5 * (self.start + self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_stream(value: f64, n: usize, dt: f64) -> TimeSeries {
        (0..n).map(|i| (i as f64 * dt, value)).collect()
    }

    #[test]
    fn framing_covers_range() {
        let s = constant_stream(1.0, 100, 0.01); // 1 second of samples
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        assert_eq!(fs.len(), 10);
        assert!((fs.frames()[0].start).abs() < 1e-12);
        assert!((fs.frames()[9].end() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_signal_rms_equals_value() {
        let s = constant_stream(2.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        for f in fs.frames() {
            assert!((f.rms - 2.0).abs() < 1e-9, "frame rms {}", f.rms);
        }
    }

    #[test]
    fn multi_stream_rms_sums_across_streams() {
        // Eq. 11 sums per-tag RMS over tags: two constant streams of 1.0 and
        // 3.0 give frame RMS 4.0.
        let a = constant_stream(1.0, 50, 0.01);
        let b = constant_stream(3.0, 50, 0.01);
        let fs = FrameSeq::build(&[a, b], 0.0, 0.5, 0.1);
        for f in fs.frames() {
            assert!((f.rms - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_frame_has_zero_rms() {
        let s = constant_stream(1.0, 10, 0.01); // only first 0.1 s populated
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        assert!(fs.frames()[0].rms > 0.0);
        for f in &fs.frames()[1..] {
            assert_eq!(f.rms, 0.0);
            assert_eq!(f.samples, 0);
        }
    }

    #[test]
    fn windows_nonoverlapping_partition() {
        let s = constant_stream(1.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.windows(5);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].frame_rms.len(), 5);
        assert!((ws[0].end - ws[1].start).abs() < 1e-12);
    }

    #[test]
    fn trailing_partial_window_kept() {
        let s = constant_stream(1.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.windows(3); // 10 frames -> 3+3+3+1
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[3].frame_rms.len(), 1);
    }

    #[test]
    fn constant_window_is_inactive() {
        let s = constant_stream(5.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        for w in fs.windows(5) {
            assert!(w.rms_std() < 1e-9);
            assert!(!w.is_active(0.01));
        }
    }

    #[test]
    fn varying_window_is_active() {
        // Big RMS swing between frames -> active window.
        let mut s = TimeSeries::new();
        for i in 0..100 {
            let t = i as f64 * 0.01;
            let v = if ((t / 0.1) as usize).is_multiple_of(2) {
                0.1
            } else {
                5.0
            };
            s.push(t, v);
        }
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.windows(5);
        assert!(ws.iter().any(|w| w.is_active(0.5)));
    }

    #[test]
    fn sliding_windows_advance_one_frame() {
        let s = constant_stream(1.0, 100, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 1.0, 0.1);
        let ws = fs.sliding_windows(5);
        assert_eq!(ws.len(), 6); // 10 - 5 + 1
        assert!((ws[1].start - fs.frames()[1].start).abs() < 1e-12);
    }

    #[test]
    fn sliding_windows_short_input() {
        let s = constant_stream(1.0, 10, 0.01);
        let fs = FrameSeq::build(&[s], 0.0, 0.1, 0.1);
        let ws = fs.sliding_windows(5);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].frame_rms.len(), 1);
    }

    #[test]
    #[should_panic(expected = "frame length must be positive")]
    fn zero_frame_len_panics() {
        FrameSeq::build(&[], 0.0, 1.0, 0.0);
    }
}
