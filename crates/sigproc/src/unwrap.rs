//! Phase de-periodicity (unwrapping).
//!
//! RFID readers report phase modulo 2π, so a smoothly varying physical phase
//! shows sudden jumps from ≈2π to ≈0 (or vice versa). Unwrapping removes
//! those discontinuities by adding the appropriate multiple of 2π to each
//! sample so that consecutive samples never differ by more than π.
//!
//! This is the "phase de-periodicity" step of the RFIPad paper (§III-A3,
//! Fig. 6), which follows the method used by CBID.

use std::f64::consts::{PI, TAU};

/// Unwraps a sequence of phase samples reported modulo 2π.
///
/// Whenever the jump between consecutive samples exceeds π, a correcting
/// multiple of 2π is accumulated, making the output continuous. The first
/// sample is returned unchanged. An empty input yields an empty output.
///
/// # Example
///
/// ```
/// use sigproc::unwrap::unwrap_phase;
/// use std::f64::consts::TAU;
///
/// let wrapped = [6.0, 0.2, 0.6]; // jumped over the 2π boundary
/// let un = unwrap_phase(&wrapped);
/// assert!((un[1] - (0.2 + TAU)).abs() < 1e-12);
/// ```
pub fn unwrap_phase(wrapped: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(wrapped.len());
    let mut unwrapper = StreamingUnwrapper::new();
    for &w in wrapped {
        out.push(unwrapper.push(w));
    }
    out
}

/// Wraps a phase value into `[0, 2π)`.
///
/// ```
/// use sigproc::unwrap::wrap_phase;
/// use std::f64::consts::TAU;
/// assert!((wrap_phase(TAU + 1.0) - 1.0).abs() < 1e-12);
/// assert!(wrap_phase(-1.0) >= 0.0);
/// ```
pub fn wrap_phase(phase: f64) -> f64 {
    let r = phase % TAU;
    if r < 0.0 {
        r + TAU
    } else {
        r
    }
}

/// Incremental phase unwrapper for streaming pipelines.
///
/// Feed wrapped samples one at a time with [`push`](Self::push); each call
/// returns the unwrapped value. The unwrapper keeps the running 2π-correction
/// so it can run forever over a live tag-report stream.
///
/// # Example
///
/// ```
/// use sigproc::unwrap::StreamingUnwrapper;
/// use std::f64::consts::TAU;
///
/// let mut u = StreamingUnwrapper::new();
/// assert_eq!(u.push(6.0), 6.0);
/// let v = u.push(0.1); // wrapped around
/// assert!((v - (0.1 + TAU)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingUnwrapper {
    last_wrapped: Option<f64>,
    correction: f64,
}

impl StreamingUnwrapper {
    /// Creates an unwrapper with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes one wrapped sample, returning its unwrapped value.
    pub fn push(&mut self, wrapped: f64) -> f64 {
        if let Some(prev) = self.last_wrapped {
            let delta = wrapped - prev;
            if delta > PI {
                self.correction -= TAU;
            } else if delta < -PI {
                self.correction += TAU;
            }
        }
        self.last_wrapped = Some(wrapped);
        wrapped + self.correction
    }

    /// Forgets all history, as if freshly constructed.
    pub fn reset(&mut self) {
        self.last_wrapped = None;
        self.correction = 0.0;
    }

    /// The current accumulated 2π correction.
    pub fn correction(&self) -> f64 {
        self.correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(unwrap_phase(&[]).is_empty());
    }

    #[test]
    fn single_sample_passthrough() {
        assert_eq!(unwrap_phase(&[1.234]), vec![1.234]);
    }

    #[test]
    fn monotone_ramp_without_wraps_is_unchanged() {
        let data: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        assert_eq!(unwrap_phase(&data), data);
    }

    #[test]
    fn upward_wrap_is_removed() {
        let wrapped = [TAU - 0.1, 0.1];
        let un = unwrap_phase(&wrapped);
        assert!((un[1] - (0.1 + TAU)).abs() < 1e-12);
    }

    #[test]
    fn downward_wrap_is_removed() {
        let wrapped = [0.1, TAU - 0.1];
        let un = unwrap_phase(&wrapped);
        assert!((un[1] - (-0.1)).abs() < 1e-12);
    }

    #[test]
    fn long_ramp_reconstructed_exactly() {
        let true_phase: Vec<f64> = (0..1000).map(|i| 0.05 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_phase(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (u, t) in un.iter().zip(&true_phase) {
            assert!((u - t).abs() < 1e-9, "u={u} t={t}");
        }
    }

    #[test]
    fn descending_ramp_reconstructed() {
        let true_phase: Vec<f64> = (0..1000).map(|i| 10.0 - 0.05 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_phase(p)).collect();
        let un = unwrap_phase(&wrapped);
        // Unwrapping is unique only up to a constant 2π offset of the start.
        let offset = un[0] - true_phase[0];
        for (u, t) in un.iter().zip(&true_phase) {
            assert!((u - t - offset).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_phase_is_idempotent_on_range() {
        for i in 0..100 {
            let p = i as f64 * 0.07;
            let w = wrap_phase(p);
            assert!((0.0..TAU).contains(&w));
            assert!((wrap_phase(w) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_matches_batch() {
        let wrapped: Vec<f64> = (0..500)
            .map(|i| wrap_phase((i as f64 * 0.31).sin() * 7.0))
            .collect();
        let batch = unwrap_phase(&wrapped);
        let mut s = StreamingUnwrapper::new();
        let streamed: Vec<f64> = wrapped.iter().map(|&w| s.push(w)).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = StreamingUnwrapper::new();
        s.push(6.0);
        s.push(0.1);
        assert!(s.correction() > 0.0);
        s.reset();
        assert_eq!(s.correction(), 0.0);
        assert_eq!(s.push(3.0), 3.0);
    }

    #[test]
    fn consecutive_diffs_bounded_by_pi() {
        let wrapped: Vec<f64> = (0..300)
            .map(|i| wrap_phase(0.2 * i as f64 + (i as f64 * 0.5).cos()))
            .collect();
        let un = unwrap_phase(&wrapped);
        for pair in un.windows(2) {
            assert!((pair[1] - pair[0]).abs() <= PI + 1e-12);
        }
    }
}
