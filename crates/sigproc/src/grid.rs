//! Small 2-D gray and binary images laid over a tag array.
//!
//! RFIPad visualizes the per-tag accumulative phase differences of an `R×C`
//! tag array as an `R×C` gray-scale image, binarizes it with Otsu's method,
//! and recognizes the hand motion from the shape of the `1` pixels. These
//! types provide that image representation plus the shape features the
//! recognizer consumes: connected components, centroids, second moments /
//! principal axis, and bounding boxes.

use crate::otsu;
use serde::{Deserialize, Serialize};

/// A row-major gray-scale image over an `rows × cols` grid.
///
/// # Example
///
/// ```
/// use sigproc::grid::GridImage;
///
/// let mut img = GridImage::zeros(5, 5);
/// img.set(2, 3, 7.5);
/// assert_eq!(img.get(2, 3), 7.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridImage {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl GridImage {
    /// Creates an all-zero image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "image dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an image from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "image dimensions must be nonzero");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Pixel value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "pixel out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "pixel out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Row-major pixel data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major pixel data, for whole-image updates without the
    /// per-pixel bounds checks of [`set`](Self::set). Row `r` occupies
    /// `data_mut()[r * cols .. (r + 1) * cols]`.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Rescales pixel values linearly to `[0, 1]`. A constant image maps to
    /// all zeros.
    pub fn normalized(&self) -> GridImage {
        let mut data = Vec::new();
        crate::kernel::normalize_unit_into(&self.data, &mut data);
        GridImage {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Binarizes via Otsu's method: foreground where `value > threshold`.
    /// A constant image yields an all-background mask.
    pub fn otsu_binarize(&self) -> BinaryGrid {
        BinaryGrid {
            rows: self.rows,
            cols: self.cols,
            mask: otsu::otsu_binarize(&self.data),
        }
    }

    /// Binarizes with a fixed threshold: foreground where `value > thresh`.
    pub fn binarize(&self, thresh: f64) -> BinaryGrid {
        let mut mask = Vec::new();
        crate::kernel::binarize_into(&self.data, thresh, &mut mask);
        BinaryGrid {
            rows: self.rows,
            cols: self.cols,
            mask,
        }
    }

    /// Renders the image as an ASCII intensity map (for experiment output).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let norm = self.normalized();
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in norm.data.chunks_exact(norm.cols) {
            for &v in row {
                let v = v.clamp(0.0, 1.0);
                let idx = (v * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// A boolean foreground mask over an `rows × cols` grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryGrid {
    rows: usize,
    cols: usize,
    mask: Vec<bool>,
}

/// Centroid and second-moment shape features of a set of foreground pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeMoments {
    /// Number of foreground pixels.
    pub area: usize,
    /// Centroid `(row, col)` in pixel coordinates.
    pub centroid: (f64, f64),
    /// Central second moment µ_rr (variance of row coordinates).
    pub mu_rr: f64,
    /// Central second moment µ_cc (variance of column coordinates).
    pub mu_cc: f64,
    /// Central mixed moment µ_rc.
    pub mu_rc: f64,
}

impl ShapeMoments {
    /// Orientation of the principal axis in radians, measured from the
    /// +column (horizontal) axis toward +row, in `(-π/2, π/2]`.
    ///
    /// Returns 0.0 for isotropic or single-pixel shapes.
    pub fn orientation(&self) -> f64 {
        crate::kernel::principal_orientation(self.mu_rr, self.mu_cc, self.mu_rc)
    }

    /// Elongation ratio: major-axis variance over minor-axis variance
    /// (≥ 1.0). Returns `f64::INFINITY` for perfectly linear shapes and 1.0
    /// for isotropic ones.
    pub fn elongation(&self) -> f64 {
        let tr = self.mu_rr + self.mu_cc;
        let det = self.mu_rr * self.mu_cc - self.mu_rc * self.mu_rc;
        let disc = (tr * tr - 4.0 * det).max(0.0).sqrt();
        let l_major = 0.5 * (tr + disc);
        let l_minor = 0.5 * (tr - disc);
        if l_minor < 1e-12 {
            if l_major < 1e-12 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            l_major / l_minor
        }
    }
}

impl BinaryGrid {
    /// Creates an all-background mask.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn empty(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        Self {
            rows,
            cols,
            mask: vec![false; rows * cols],
        }
    }

    /// Creates a mask from row-major booleans.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn from_mask(rows: usize, cols: usize, mask: Vec<bool>) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        assert_eq!(mask.len(), rows * cols, "mask length mismatch");
        Self { rows, cols, mask }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether `(row, col)` is foreground.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "pixel out of bounds");
        self.mask[row * self.cols + col]
    }

    /// Sets `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows && col < self.cols, "pixel out of bounds");
        self.mask[row * self.cols + col] = value;
    }

    /// Total number of foreground pixels.
    pub fn area(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// Coordinates `(row, col)` of all foreground pixels, row-major order.
    pub fn foreground(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (r, row) in self.mask.chunks_exact(self.cols).enumerate() {
            for (c, &on) in row.iter().enumerate() {
                if on {
                    out.push((r, c));
                }
            }
        }
        out
    }

    /// Bounding box `(min_row, min_col, max_row, max_col)` of the foreground,
    /// or `None` if the mask is empty. Computed in one row-major sweep,
    /// without materializing the foreground coordinate list.
    pub fn bounding_box(&self) -> Option<(usize, usize, usize, usize)> {
        let mut bbox: Option<(usize, usize, usize, usize)> = None;
        for (r, row) in self.mask.chunks_exact(self.cols).enumerate() {
            for (c, &on) in row.iter().enumerate() {
                if on {
                    bbox = Some(match bbox {
                        None => (r, c, r, c),
                        Some((min_r, min_c, max_r, max_c)) => {
                            (min_r.min(r), min_c.min(c), max_r.max(r), max_c.max(c))
                        }
                    });
                }
            }
        }
        bbox
    }

    /// Centroid and second-moment features of the foreground, or `None` if
    /// the mask is empty.
    pub fn moments(&self) -> Option<ShapeMoments> {
        let m = crate::kernel::mask_moments(&self.mask, self.cols)?;
        Some(ShapeMoments {
            area: m.area,
            centroid: m.centroid,
            mu_rr: m.mu_rr,
            mu_cc: m.mu_cc,
            mu_rc: m.mu_rc,
        })
    }

    /// 8-connected components of the foreground, each a list of `(row, col)`
    /// pixels, ordered by decreasing size.
    pub fn connected_components(&self) -> Vec<Vec<(usize, usize)>> {
        // Row-major `r * cols + c` indexing is intentional here: the DFS
        // jumps between arbitrary neighbours, so there is no iterator shape
        // that would lift the bounds checks without obscuring the traversal.
        let mut visited = vec![false; self.mask.len()];
        let mut components = Vec::new();
        for start_r in 0..self.rows {
            for start_c in 0..self.cols {
                let idx = start_r * self.cols + start_c;
                if !self.mask[idx] || visited[idx] {
                    continue;
                }
                let mut comp = Vec::new();
                let mut stack = vec![(start_r, start_c)];
                visited[idx] = true;
                while let Some((r, c)) = stack.pop() {
                    comp.push((r, c));
                    for dr in -1i64..=1 {
                        for dc in -1i64..=1 {
                            if dr == 0 && dc == 0 {
                                continue;
                            }
                            let nr = r as i64 + dr;
                            let nc = c as i64 + dc;
                            if nr < 0 || nc < 0 || nr >= self.rows as i64 || nc >= self.cols as i64
                            {
                                continue;
                            }
                            let (nr, nc) = (nr as usize, nc as usize);
                            let nidx = nr * self.cols + nc;
                            if self.mask[nidx] && !visited[nidx] {
                                visited[nidx] = true;
                                stack.push((nr, nc));
                            }
                        }
                    }
                }
                components.push(comp);
            }
        }
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        components
    }

    /// Returns a mask containing only the largest connected component, or an
    /// empty mask if there is no foreground.
    pub fn largest_component(&self) -> BinaryGrid {
        let mut out = BinaryGrid::empty(self.rows, self.cols);
        if let Some(comp) = self.connected_components().first() {
            for &(r, c) in comp {
                out.set(r, c, true);
            }
        }
        out
    }

    /// Renders as ASCII (`#` foreground, `.` background) for experiment
    /// output, matching the paper's Fig. 7(c) visualization.
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in self.mask.chunks_exact(self.cols) {
            for &on in row {
                out.push(if on { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column_mask() -> BinaryGrid {
        // Foreground = column 2 of a 5x5 grid (the paper's Fig. 7 case).
        let mut g = BinaryGrid::empty(5, 5);
        for r in 0..5 {
            g.set(r, 2, true);
        }
        g
    }

    #[test]
    fn zeros_and_set_get() {
        let mut img = GridImage::zeros(3, 4);
        assert_eq!(img.rows(), 3);
        assert_eq!(img.cols(), 4);
        img.set(1, 2, 5.0);
        assert_eq!(img.get(1, 2), 5.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "pixel out of bounds")]
    fn get_out_of_bounds_panics() {
        GridImage::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn normalized_maps_to_unit_range() {
        let img = GridImage::from_data(1, 4, vec![-2.0, 0.0, 2.0, 6.0]);
        let n = img.normalized();
        assert_eq!(n.get(0, 0), 0.0);
        assert_eq!(n.get(0, 3), 1.0);
        assert!((n.get(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalized_constant_is_zero() {
        let img = GridImage::from_data(2, 2, vec![3.0; 4]);
        assert!(img.normalized().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn otsu_binarize_extracts_hot_column() {
        let mut img = GridImage::zeros(5, 5);
        for r in 0..5 {
            img.set(r, 2, 10.0 + r as f64 * 0.1);
        }
        let bin = img.otsu_binarize();
        assert_eq!(bin.area(), 5);
        for r in 0..5 {
            assert!(bin.get(r, 2));
        }
    }

    #[test]
    fn column_moments_are_vertical() {
        let m = column_mask().moments().expect("foreground");
        assert_eq!(m.area, 5);
        assert!((m.centroid.1 - 2.0).abs() < 1e-12);
        assert!(m.mu_rr > m.mu_cc);
        // Vertical line: orientation ±π/2 from horizontal axis.
        assert!((m.orientation().abs() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert!(m.elongation().is_infinite());
    }

    #[test]
    fn row_moments_are_horizontal() {
        let mut g = BinaryGrid::empty(5, 5);
        for c in 0..5 {
            g.set(2, c, true);
        }
        let m = g.moments().expect("foreground");
        assert!(m.mu_cc > m.mu_rr);
        assert!(m.orientation().abs() < 1e-9);
    }

    #[test]
    fn diagonal_orientation_is_45_degrees() {
        let mut g = BinaryGrid::empty(5, 5);
        for i in 0..5 {
            g.set(i, i, true);
        }
        let m = g.moments().expect("foreground");
        assert!((m.orientation() - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn single_pixel_shape() {
        let mut g = BinaryGrid::empty(5, 5);
        g.set(3, 1, true);
        let m = g.moments().expect("foreground");
        assert_eq!(m.area, 1);
        assert_eq!(m.centroid, (3.0, 1.0));
        assert_eq!(m.elongation(), 1.0);
    }

    #[test]
    fn empty_mask_has_no_moments_or_bbox() {
        let g = BinaryGrid::empty(4, 4);
        assert!(g.moments().is_none());
        assert!(g.bounding_box().is_none());
        assert_eq!(g.area(), 0);
    }

    #[test]
    fn bounding_box_of_column() {
        assert_eq!(column_mask().bounding_box(), Some((0, 2, 4, 2)));
    }

    #[test]
    fn connected_components_split_and_order() {
        let mut g = BinaryGrid::empty(5, 5);
        // Big component: column 0 (5 px). Small: single pixel far away.
        for r in 0..5 {
            g.set(r, 0, true);
        }
        g.set(0, 4, true);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 5);
        assert_eq!(comps[1].len(), 1);
        let largest = g.largest_component();
        assert_eq!(largest.area(), 5);
        assert!(!largest.get(0, 4));
    }

    #[test]
    fn diagonal_pixels_are_8_connected() {
        let mut g = BinaryGrid::empty(3, 3);
        g.set(0, 0, true);
        g.set(1, 1, true);
        g.set(2, 2, true);
        assert_eq!(g.connected_components().len(), 1);
    }

    #[test]
    fn ascii_rendering() {
        let g = column_mask();
        let s = g.to_ascii();
        assert_eq!(s.lines().count(), 5);
        assert!(s.lines().all(|l| l == "..#.."));
    }
}
