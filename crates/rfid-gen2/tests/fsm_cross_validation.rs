//! Cross-validation of the two MAC models: a reader driven entirely
//! through the bit-level tag FSMs must singulate a population with the
//! same qualitative behaviour (full coverage, collision/empty dynamics)
//! the slot-level `inventory` module assumes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::tags::TagId;
use rfid_gen2::epc::Epc96;
use rfid_gen2::protocol::{Command, MillerM, Reply, Session, TagFsm, Target};
use std::collections::HashSet;

/// A minimal FSM-level reader: runs Query/QueryRep/ACK rounds against a
/// set of tag state machines until every tag has been read once, counting
/// slot outcomes.
struct FsmReader {
    tags: Vec<TagFsm>,
    rng: StdRng,
    successes: usize,
    collisions: usize,
    empties: usize,
    read_epcs: HashSet<Epc96>,
}

impl FsmReader {
    fn new(count: u64, seed: u64) -> Self {
        Self {
            tags: (0..count)
                .map(|i| TagFsm::new(Epc96::for_tag(TagId(i))))
                .collect(),
            rng: StdRng::seed_from_u64(seed),
            successes: 0,
            collisions: 0,
            empties: 0,
            read_epcs: HashSet::new(),
        }
    }

    fn broadcast(&mut self, cmd: &Command) -> Vec<(usize, Reply)> {
        let mut replies = Vec::new();
        for (i, tag) in self.tags.iter_mut().enumerate() {
            if let Some(r) = tag.handle(cmd, &mut self.rng) {
                replies.push((i, r));
            }
        }
        replies
    }

    /// One full round with the given Q; returns true if progress was made.
    fn round(&mut self, q: u8) -> bool {
        let query = Command::Query {
            dr: false,
            m: MillerM::M4,
            trext: true,
            session: Session::S1,
            target: Target::A,
            q,
        };
        let mut replies = self.broadcast(&query);
        let before = self.successes;
        for _slot in 0..(1u32 << q) {
            match replies.len() {
                0 => self.empties += 1,
                1 => {
                    let (idx, reply) = replies.pop().expect("one reply");
                    let rn16 = match reply {
                        Reply::Rn16(r) => r,
                        other => panic!("expected RN16, got {other:?}"),
                    };
                    // ACK exactly the replying tag; broadcast is fine — the
                    // RN16 match gates acceptance.
                    let ack = Command::Ack { rn16 };
                    let epc_replies = self.broadcast(&ack);
                    assert_eq!(epc_replies.len(), 1, "exactly the acked tag answers");
                    let (epc_idx, epc_reply) = &epc_replies[0];
                    assert_eq!(*epc_idx, idx, "the singulated tag delivers its EPC");
                    if let Reply::EpcFrame { pc, epc, crc } = epc_reply {
                        assert!(rfid_gen2::protocol::verify_epc_frame(*pc, epc, *crc));
                        self.read_epcs.insert(*epc);
                        self.successes += 1;
                    } else {
                        panic!("expected EPC frame");
                    }
                }
                _ => {
                    self.collisions += 1;
                    // Colliding RN16s garble; reader NAKs and moves on.
                    self.broadcast(&Command::Nak);
                }
            }
            replies = self.broadcast(&Command::QueryRep {
                session: Session::S1,
            });
        }
        self.successes > before
    }
}

#[test]
fn fsm_reader_singulates_entire_population() {
    let mut reader = FsmReader::new(25, 7);
    for _round in 0..60 {
        reader.round(5);
        if reader.read_epcs.len() == 25 {
            break;
        }
    }
    assert_eq!(reader.read_epcs.len(), 25, "every tag read");
    // Behavioural cross-check with the slot-level model's assumptions:
    // with 2^5 slots for 25 tags some slots collide and some are empty.
    assert!(
        reader.collisions > 0,
        "collisions occur at Q=5 with 25 tags"
    );
    assert!(reader.empties > 0, "empty slots occur");
    assert_eq!(
        reader.successes, 25,
        "each success corresponds to one unique EPC"
    );
}

#[test]
fn small_q_forces_collisions_large_q_mostly_empties() {
    // The slot-level Q-algorithm adapts on exactly this signal; the FSM
    // model must exhibit it.
    let mut crowded = FsmReader::new(20, 11);
    crowded.round(1); // 2 slots for 20 tags
    assert!(crowded.collisions >= 1, "tiny Q must collide");

    let mut sparse = FsmReader::new(2, 12);
    sparse.round(7); // 128 slots for 2 tags
    assert!(
        sparse.empties > 100,
        "huge Q wastes slots: {}",
        sparse.empties
    );
}

#[test]
fn session_flags_keep_read_tags_out_until_retarget() {
    let mut reader = FsmReader::new(5, 13);
    for _ in 0..40 {
        reader.round(3);
        if reader.read_epcs.len() == 5 {
            break;
        }
    }
    assert_eq!(reader.read_epcs.len(), 5);
    // All flags are now B; another target-A round reads nobody.
    let before = reader.successes;
    reader.round(3);
    assert_eq!(
        reader.successes, before,
        "flag-B tags sit out target-A rounds"
    );
    // A target-B query brings them back (dual-target behaviour).
    let query_b = Command::Query {
        dr: false,
        m: MillerM::M4,
        trext: true,
        session: Session::S1,
        target: Target::B,
        q: 3,
    };
    let replies = reader.broadcast(&query_b);
    let arbitrating = reader
        .tags
        .iter()
        .filter(|t| t.state() != rfid_gen2::protocol::TagState::Ready)
        .count();
    assert!(
        !replies.is_empty() || arbitrating > 0,
        "retargeting B re-engages the population"
    );
}
