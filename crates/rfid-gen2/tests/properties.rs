//! Property-based tests of the Gen2 protocol substrate.

use proptest::prelude::*;
use rf_sim::scene::TagObservation;
use rf_sim::tags::TagId;
use rfid_gen2::crc::{crc16, crc16_verify, crc5, crc5_verify};
use rfid_gen2::epc::Epc96;
use rfid_gen2::llrp::{decode_report, encode_report, LlrpMessage};
use rfid_gen2::reader::TagReadEvent;
use rfid_gen2::QAlgorithm;

proptest! {
    /// CRC-16 verifies its own output and rejects any single-bit flip.
    #[test]
    fn crc16_round_trip_and_flip(data in prop::collection::vec(any::<u8>(), 1..64), flip in 0usize..512) {
        let crc = crc16(&data);
        prop_assert!(crc16_verify(&data, crc));
        let byte = (flip / 8) % data.len();
        let bit = flip % 8;
        let mut corrupted = data.clone();
        corrupted[byte] ^= 1 << bit;
        prop_assert!(!crc16_verify(&corrupted, crc));
    }

    /// CRC-5 stays in range and rejects single-bit flips.
    #[test]
    fn crc5_round_trip_and_flip(bits in prop::collection::vec(any::<bool>(), 1..64), flip in 0usize..64) {
        let crc = crc5(&bits);
        prop_assert!(crc < 32);
        prop_assert!(crc5_verify(&bits, crc));
        let idx = flip % bits.len();
        let mut corrupted = bits.clone();
        corrupted[idx] = !corrupted[idx];
        prop_assert!(!crc5_verify(&corrupted, crc));
    }

    /// EPC minting round-trips every tag id.
    #[test]
    fn epc_round_trip(id in any::<u64>()) {
        prop_assert_eq!(Epc96::for_tag(TagId(id)).to_tag(), Some(TagId(id)));
    }

    /// LLRP message framing round-trips any payload.
    #[test]
    fn llrp_frame_round_trip(
        msg_type in 0u16..1024,
        msg_id in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = LlrpMessage { msg_type, msg_id, payload };
        let bytes = msg.encode();
        let (decoded, used) = LlrpMessage::decode(&bytes).expect("well-formed");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    /// Tag reports survive the wire format to quantization accuracy.
    #[test]
    fn report_round_trip(
        reads in prop::collection::vec(
            (0u64..1000, 0.0f64..100.0, 0.0f64..6.2, -90.0f64..-20.0, -30.0f64..30.0),
            0..40,
        ),
    ) {
        let events: Vec<TagReadEvent> = reads
            .iter()
            .map(|&(id, time, phase, rss, doppler)| TagReadEvent {
                epc: Epc96::for_tag(TagId(id)),
                antenna_port: 1,
                observation: TagObservation {
                    tag: TagId(id),
                    time,
                    phase,
                    rss_dbm: rss,
                    doppler_hz: doppler,
                },
            })
            .collect();
        let wire = encode_report(&events, 3);
        let (msg, _) = LlrpMessage::decode(&wire).expect("frame");
        let decoded = decode_report(&msg).expect("payload");
        prop_assert_eq!(decoded.len(), events.len());
        for (orig, dec) in events.iter().zip(&decoded) {
            prop_assert_eq!(dec.epc, orig.epc);
            prop_assert!((dec.observation.phase - orig.observation.phase).abs() < 0.002);
            prop_assert!((dec.observation.rss_dbm - orig.observation.rss_dbm).abs() < 0.01);
            prop_assert!((dec.observation.doppler_hz - orig.observation.doppler_hz).abs() < 0.07);
            prop_assert!((dec.observation.time - orig.observation.time).abs() < 1e-5);
        }
    }

    /// The Q-algorithm never leaves [0, 15] under any event sequence.
    #[test]
    fn q_algorithm_bounded(
        initial in 0u8..16,
        events in prop::collection::vec(0u8..3, 0..500),
    ) {
        let mut q = QAlgorithm::new(initial);
        for e in events {
            match e {
                0 => q.on_empty(),
                1 => q.on_collision(),
                _ => q.on_success(),
            }
            prop_assert!(q.q() <= 15);
        }
    }
}
