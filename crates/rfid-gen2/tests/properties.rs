//! Property-based tests of the Gen2 protocol substrate.

use proptest::prelude::*;
use rf_sim::tags::TagId;
use rfid_gen2::crc::{crc16, crc16_verify, crc5, crc5_verify};
use rfid_gen2::epc::Epc96;
use rfid_gen2::llrp::{decode_report, encode_report, LlrpMessage};
use rfid_gen2::report::TagReport;
use rfid_gen2::trace::{read_trace, write_trace, TraceFormat};
use rfid_gen2::QAlgorithm;

/// Builds a report from a proptest-drawn tuple.
fn report_from(
    (id, time, phase, rss, doppler, antenna, channel): (u64, f64, f64, f64, f64, u16, u16),
) -> TagReport {
    TagReport {
        epc: Epc96::for_tag(TagId(id)),
        tag: TagId(id),
        time,
        phase,
        rss_dbm: rss,
        doppler_hz: doppler,
        antenna_port: antenna,
        channel_index: channel,
    }
}

proptest! {
    /// CRC-16 verifies its own output and rejects any single-bit flip.
    #[test]
    fn crc16_round_trip_and_flip(data in prop::collection::vec(any::<u8>(), 1..64), flip in 0usize..512) {
        let crc = crc16(&data);
        prop_assert!(crc16_verify(&data, crc));
        let byte = (flip / 8) % data.len();
        let bit = flip % 8;
        let mut corrupted = data.clone();
        corrupted[byte] ^= 1 << bit;
        prop_assert!(!crc16_verify(&corrupted, crc));
    }

    /// CRC-5 stays in range and rejects single-bit flips.
    #[test]
    fn crc5_round_trip_and_flip(bits in prop::collection::vec(any::<bool>(), 1..64), flip in 0usize..64) {
        let crc = crc5(&bits);
        prop_assert!(crc < 32);
        prop_assert!(crc5_verify(&bits, crc));
        let idx = flip % bits.len();
        let mut corrupted = bits.clone();
        corrupted[idx] = !corrupted[idx];
        prop_assert!(!crc5_verify(&corrupted, crc));
    }

    /// EPC minting round-trips every tag id.
    #[test]
    fn epc_round_trip(id in any::<u64>()) {
        prop_assert_eq!(Epc96::for_tag(TagId(id)).to_tag(), Some(TagId(id)));
    }

    /// LLRP message framing round-trips any payload.
    #[test]
    fn llrp_frame_round_trip(
        msg_type in 0u16..1024,
        msg_id in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = LlrpMessage { msg_type, msg_id, payload };
        let bytes = msg.encode();
        let (decoded, used) = LlrpMessage::decode(&bytes).expect("well-formed");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    /// Tag reports survive the wire format to quantization accuracy.
    #[test]
    fn report_round_trip(
        reads in prop::collection::vec(
            (0u64..1000, 0.0f64..100.0, 0.0f64..6.2, -90.0f64..-20.0, -30.0f64..30.0,
             1u16..5, 0u16..51),
            0..40,
        ),
    ) {
        let events: Vec<TagReport> = reads.iter().copied().map(report_from).collect();
        let wire = encode_report(&events, 3);
        let (msg, _) = LlrpMessage::decode(&wire).expect("frame");
        let decoded = decode_report(&msg).expect("payload");
        prop_assert_eq!(decoded.len(), events.len());
        for (orig, dec) in events.iter().zip(&decoded) {
            prop_assert_eq!(dec.epc, orig.epc);
            prop_assert_eq!(dec.antenna_port, orig.antenna_port);
            prop_assert_eq!(dec.channel_index, orig.channel_index);
            prop_assert!((dec.phase - orig.phase).abs() < 0.002);
            prop_assert!((dec.rss_dbm - orig.rss_dbm).abs() < 0.01);
            prop_assert!((dec.doppler_hz - orig.doppler_hz).abs() < 0.07);
            prop_assert!((dec.time - orig.time).abs() < 1e-5);
        }
    }

    /// Both trace framings round-trip any report stream bit-exactly —
    /// including float bit patterns.
    #[test]
    fn trace_round_trip_bit_exact(
        reads in prop::collection::vec(
            (any::<u64>(), any::<f64>(), any::<f64>(), any::<f64>(), any::<f64>(),
             any::<u16>(), any::<u16>()),
            0..30,
        ),
    ) {
        let reports: Vec<TagReport> = reads
            .iter()
            .copied()
            // NaN breaks PartialEq, not the codec; keep comparisons meaningful.
            .filter(|r| !r.1.is_nan() && !r.2.is_nan() && !r.3.is_nan() && !r.4.is_nan())
            .map(report_from)
            .collect();
        for format in [TraceFormat::JsonLines, TraceFormat::Binary] {
            let mut buf = Vec::new();
            write_trace(&mut buf, format, &reports).expect("write");
            let decoded = read_trace(&mut buf.as_slice()).expect("read");
            prop_assert_eq!(&decoded, &reports);
            for (orig, dec) in reports.iter().zip(&decoded) {
                prop_assert_eq!(orig.time.to_bits(), dec.time.to_bits());
                prop_assert_eq!(orig.phase.to_bits(), dec.phase.to_bits());
                prop_assert_eq!(orig.rss_dbm.to_bits(), dec.rss_dbm.to_bits());
                prop_assert_eq!(orig.doppler_hz.to_bits(), dec.doppler_hz.to_bits());
            }
        }
    }

    /// The Q-algorithm never leaves [0, 15] under any event sequence.
    #[test]
    fn q_algorithm_bounded(
        initial in 0u8..16,
        events in prop::collection::vec(0u8..3, 0..500),
    ) {
        let mut q = QAlgorithm::new(initial);
        for e in events {
            match e {
                0 => q.on_empty(),
                1 => q.on_collision(),
                _ => q.on_success(),
            }
            prop_assert!(q.q() <= 15);
        }
    }
}
