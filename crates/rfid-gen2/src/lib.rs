//! EPC Class-1 Generation-2 UHF RFID reader simulator.
//!
//! This crate stands in for the paper's Impinj Speedway R420 + Octane SDK
//! stack. It layers a faithful medium-access model on top of the physics in
//! [`rf_sim`]:
//!
//! - [`crc`] — the Gen2 CRC-5 and CRC-16;
//! - [`epc`] — EPC-96 identifiers with PC word and reply CRC;
//! - [`link`] — FM0/Miller link timing, from which per-tag read rates (and
//!   the paper's undersampling-at-speed limitation) follow;
//! - [`protocol`] — bit-level command encodings (Query/ACK/… with CRC-5)
//!   and the tag inventory state machine (Ready → Arbitrate → Reply →
//!   Acknowledged);
//! - [`inventory`] — slotted-ALOHA rounds with the floating-point
//!   Q-algorithm and A/B session flags (the fast slot-level model the
//!   reader facade runs);
//! - [`reader`] — the reader facade producing timestamped
//!   EPC/phase/RSS/Doppler reports from a scene;
//! - [`report`] — [`report::TagReport`], the canonical reader-boundary
//!   record the recognition stack consumes;
//! - [`llrp`] — an LLRP-style wire format for the report stream;
//! - [`trace`] — record/replay serialization of report streams (JSON lines
//!   and length-prefixed binary);
//! - [`source`] — the [`source::ReportSource`] abstraction over live runs
//!   and recorded traces;
//! - [`wire`] — the RFIPad ingest protocol: versioned handshake,
//!   session-multiplexed report-batch frames, and the client codec.
//!
//! # Example
//!
//! ```
//! use rfid_gen2::reader::{Gen2Reader, ReaderConfig};
//! use rf_sim::antenna::ReaderAntenna;
//! use rf_sim::environment::Environment;
//! use rf_sim::geometry::Vec3;
//! use rf_sim::scene::{Scene, SceneConfig};
//! use rf_sim::tags::{TagArray, TagModel};
//! use rf_sim::units::Dbi;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| id.0 as f64);
//! let antenna = ReaderAntenna::new(
//!     Vec3::new(0.12, -0.12, -0.32),
//!     Vec3::new(0.0, 0.0, 1.0),
//!     Dbi(8.0),
//! );
//! let scene = Scene::new(
//!     antenna,
//!     array.tags().to_vec(),
//!     Environment::office_location(1),
//!     SceneConfig::default(),
//! );
//! let reader = Gen2Reader::new(ReaderConfig::default());
//! let mut rng = StdRng::seed_from_u64(1);
//! let run = reader.run(&scene, &[], 0.0, 0.5, &mut rng);
//! assert!(!run.events.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crc;
pub mod epc;
pub mod inventory;
pub mod link;
pub mod llrp;
pub mod protocol;
pub mod reader;
pub mod report;
pub mod source;
pub(crate) mod telemetry;
pub mod trace;
pub mod wire;

pub use epc::Epc96;
pub use inventory::{Flag, InventoryStats, QAlgorithm, SearchMode, SlotOutcome};
pub use link::{LinkParams, TagEncoding};
pub use protocol::{Command, Reply, Session, TagFsm, TagState, Target};
pub use reader::{Gen2Reader, ReaderConfig, ReaderRun};
pub use report::{ReportBatch, TagReport, FIXED_CARRIER_CHANNEL};
pub use source::{LiveSource, ReportSource, TraceSource};
pub use trace::{TraceError, TraceFormat};
