//! CRC-5 and CRC-16 as specified by EPC C1G2 (ISO 18000-6C).
//!
//! Gen2 protects Query commands with a CRC-5 (polynomial x⁵+x³+1, preset
//! `01001`) and tag replies / longer commands with the CCITT CRC-16
//! (polynomial 0x1021, preset 0xFFFF, output complemented).

/// Computes the Gen2 CRC-5 over a bit sequence (MSB-first bits as booleans).
///
/// Polynomial x⁵ + x³ + 1, preset `0b01001`, per the Gen2 air interface.
///
/// ```
/// use rfid_gen2::crc::crc5;
/// let bits = [true, false, true, true, false, false, true, false];
/// let c = crc5(&bits);
/// assert!(c < 32);
/// ```
pub fn crc5(bits: &[bool]) -> u8 {
    let mut reg: u8 = 0b01001;
    for &bit in bits {
        let msb = (reg >> 4) & 1 == 1;
        reg = (reg << 1) & 0b11111;
        if msb != bit {
            reg ^= 0b01001; // x^5 + x^3 + 1 -> feedback taps at bits 3 and 0
        }
    }
    reg & 0b11111
}

/// Verifies a CRC-5 against a bit sequence.
pub fn crc5_verify(bits: &[bool], crc: u8) -> bool {
    crc5(bits) == (crc & 0b11111)
}

/// Computes the Gen2 CRC-16 over bytes: CCITT polynomial 0x1021, preset
/// 0xFFFF, final complement (CRC-16/GENIBUS).
///
/// ```
/// use rfid_gen2::crc::crc16;
/// // Standard check value for "123456789".
/// assert_eq!(crc16(b"123456789"), 0xD64E);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut reg: u16 = 0xFFFF;
    for &byte in data {
        reg ^= (byte as u16) << 8;
        for _ in 0..8 {
            if reg & 0x8000 != 0 {
                reg = (reg << 1) ^ 0x1021;
            } else {
                reg <<= 1;
            }
        }
    }
    !reg
}

/// Verifies a CRC-16 against a byte sequence.
pub fn crc16_verify(data: &[u8], crc: u16) -> bool {
    crc16(data) == crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/GENIBUS("123456789") = 0xD64E (complement of CCITT-FALSE's
        // 0x29B1).
        assert_eq!(crc16(b"123456789"), 0xD64E);
        assert_eq!(!crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc16_empty_input() {
        // Preset 0xFFFF complemented.
        assert_eq!(crc16(&[]), 0x0000);
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        let msg = b"hello gen2 tag".to_vec();
        let base = crc16(&msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut corrupted = msg.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc16(&corrupted), base, "undetected flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn crc16_verify_round_trip() {
        let msg = [0x30, 0x00, 0x11, 0x22];
        let crc = crc16(&msg);
        assert!(crc16_verify(&msg, crc));
        assert!(!crc16_verify(&msg, crc ^ 1));
    }

    #[test]
    fn crc5_is_five_bits() {
        for n in 0..64usize {
            let bits: Vec<bool> = (0..16).map(|i| (n >> (i % 6)) & 1 == 1).collect();
            assert!(crc5(&bits) < 32);
        }
    }

    #[test]
    fn crc5_detects_single_bit_flips() {
        let bits: Vec<bool> = [1, 0, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0]
            .iter()
            .map(|&b| b == 1)
            .collect();
        let base = crc5(&bits);
        for i in 0..bits.len() {
            let mut corrupted = bits.clone();
            corrupted[i] = !corrupted[i];
            assert_ne!(crc5(&corrupted), base, "undetected flip at bit {i}");
        }
    }

    #[test]
    fn crc5_verify_round_trip() {
        let bits = vec![true; 17];
        let crc = crc5(&bits);
        assert!(crc5_verify(&bits, crc));
        assert!(!crc5_verify(&bits, crc ^ 0b00100));
    }

    #[test]
    fn crc5_empty_is_preset() {
        assert_eq!(crc5(&[]), 0b01001);
    }
}
