//! Bit-level Gen2 commands and the tag-side state machine.
//!
//! The inventory simulator in [`crate::inventory`] models rounds at the
//! slot level for speed; this module models the air interface one layer
//! down — the actual command encodings (Query with its CRC-5, QueryRep,
//! QueryAdjust, ACK, NAK, Select) and the tag state machine
//! (*Ready → Arbitrate → Reply → Acknowledged*) the EPC C1G2 specification
//! defines. The two layers are cross-validated in tests: a full FSM-level
//! singulation produces the same observable sequence the slot-level
//! simulator assumes.

use crate::crc::{crc16, crc5};
use crate::epc::Epc96;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gen2 session (S0–S3): which inventoried flag a round addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Session {
    /// Session 0 (flag decays immediately without reader power).
    S0,
    /// Session 1 (persistence 0.5–5 s).
    S1,
    /// Session 2.
    S2,
    /// Session 3.
    S3,
}

impl Session {
    fn bits(self) -> [bool; 2] {
        match self {
            Session::S0 => [false, false],
            Session::S1 => [false, true],
            Session::S2 => [true, false],
            Session::S3 => [true, true],
        }
    }
}

/// Inventoried-flag target of a Query (A or B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Tags whose session flag is A participate.
    A,
    /// Tags whose session flag is B participate.
    B,
}

/// Tag-to-reader encoding selector carried in Query (M value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MillerM {
    /// FM0 baseband.
    Fm0,
    /// Miller M=2.
    M2,
    /// Miller M=4.
    M4,
    /// Miller M=8.
    M8,
}

impl MillerM {
    fn bits(self) -> [bool; 2] {
        match self {
            MillerM::Fm0 => [false, false],
            MillerM::M2 => [false, true],
            MillerM::M4 => [true, false],
            MillerM::M8 => [true, true],
        }
    }
}

/// A reader → tag command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Starts an inventory round with `2^q` slots.
    Query {
        /// Divide ratio flag (DR): false = 8, true = 64/3.
        dr: bool,
        /// Tag-to-reader encoding.
        m: MillerM,
        /// Pilot-tone request.
        trext: bool,
        /// Session addressed.
        session: Session,
        /// Flag targeted.
        target: Target,
        /// Slot-count exponent (0–15).
        q: u8,
    },
    /// Advances to the next slot in the round.
    QueryRep {
        /// Session addressed (must match the round's Query).
        session: Session,
    },
    /// Adjusts Q mid-round: `updn` is +1, 0, or −1.
    QueryAdjust {
        /// Session addressed.
        session: Session,
        /// Q adjustment: −1, 0, +1.
        updn: i8,
    },
    /// Acknowledges a singulated tag by echoing its RN16.
    Ack {
        /// The RN16 from the tag's reply.
        rn16: u16,
    },
    /// Negative acknowledge: return all Reply/Acknowledged tags to
    /// Arbitrate.
    Nak,
}

impl Command {
    /// Encodes the command to its air-interface bits (MSB first), including
    /// the CRC-5 on Query.
    pub fn encode(&self) -> Vec<bool> {
        let mut bits = Vec::new();
        match self {
            Command::Query {
                dr,
                m,
                trext,
                session,
                target,
                q,
            } => {
                // Command code 1000.
                bits.extend([true, false, false, false]);
                bits.push(*dr);
                bits.extend(m.bits());
                bits.push(*trext);
                // Sel = all (00).
                bits.extend([false, false]);
                bits.extend(session.bits());
                bits.push(matches!(target, Target::B));
                assert!(*q <= 15, "Q must be ≤ 15");
                for i in (0..4).rev() {
                    bits.push((q >> i) & 1 == 1);
                }
                let crc = crc5(&bits);
                for i in (0..5).rev() {
                    bits.push((crc >> i) & 1 == 1);
                }
            }
            Command::QueryRep { session } => {
                bits.extend([false, false]);
                bits.extend(session.bits());
            }
            Command::QueryAdjust { session, updn } => {
                bits.extend([true, false, false, true]);
                bits.extend(session.bits());
                let code: [bool; 3] = match updn {
                    1 => [true, true, false],
                    0 => [false, false, false],
                    -1 => [false, true, true],
                    other => panic!("updn must be -1, 0 or 1, got {other}"),
                };
                bits.extend(code);
            }
            Command::Ack { rn16 } => {
                bits.extend([false, true]);
                for i in (0..16).rev() {
                    bits.push((rn16 >> i) & 1 == 1);
                }
            }
            Command::Nak => {
                bits.extend([true, true, false, false, false, false, false, false]);
            }
        }
        bits
    }

    /// Length of the encoded command in bits.
    pub fn bit_len(&self) -> usize {
        self.encode().len()
    }
}

/// Tag → reader replies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reply {
    /// The 16-bit random number a tag backscatters when its slot counter
    /// reaches zero.
    Rn16(u16),
    /// The full `PC + EPC + CRC16` frame sent after a matching ACK.
    EpcFrame {
        /// Protocol-control word.
        pc: u16,
        /// The EPC.
        epc: Epc96,
        /// CRC-16 over PC+EPC.
        crc: u16,
    },
}

/// The Gen2 tag inventory states (spec Fig. 6.19, abridged to the inventory
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagState {
    /// Powered, not in a round.
    Ready,
    /// In a round, counting slots.
    Arbitrate,
    /// Slot hit zero; RN16 backscattered, waiting for ACK.
    Reply,
    /// ACK matched; EPC backscattered.
    Acknowledged,
}

/// A Gen2 tag's inventory-path state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagFsm {
    epc: Epc96,
    state: TagState,
    slot: u32,
    rn16: u16,
    /// Inventoried flags per session (A = false, B = true).
    flags: [bool; 4],
}

impl TagFsm {
    /// A freshly powered tag: Ready, all session flags A.
    pub fn new(epc: Epc96) -> Self {
        Self {
            epc,
            state: TagState::Ready,
            slot: 0,
            rn16: 0,
            flags: [false; 4],
        }
    }

    /// Current state.
    pub fn state(&self) -> TagState {
        self.state
    }

    /// The tag's EPC.
    pub fn epc(&self) -> &Epc96 {
        &self.epc
    }

    /// The session flag (false = A, true = B).
    pub fn flag(&self, session: Session) -> bool {
        self.flags[session as usize]
    }

    /// Processes a command, possibly replying. `rng` draws the slot and
    /// RN16 values the spec requires from the tag's random generator.
    pub fn handle<R: Rng + ?Sized>(&mut self, command: &Command, rng: &mut R) -> Option<Reply> {
        match command {
            Command::Query {
                session, target, q, ..
            } => {
                let idx = *session as usize;
                let matches = self.flags[idx] == matches!(target, Target::B);
                if !matches {
                    self.state = TagState::Ready;
                    return None;
                }
                self.slot = rng.random_range(0..(1u32 << q));
                if self.slot == 0 {
                    self.rn16 = rng.random();
                    self.state = TagState::Reply;
                    Some(Reply::Rn16(self.rn16))
                } else {
                    self.state = TagState::Arbitrate;
                    None
                }
            }
            Command::QueryRep { .. } => match self.state {
                TagState::Arbitrate => {
                    self.slot = self.slot.saturating_sub(1);
                    if self.slot == 0 {
                        self.rn16 = rng.random();
                        self.state = TagState::Reply;
                        Some(Reply::Rn16(self.rn16))
                    } else {
                        None
                    }
                }
                // A QueryRep while in Reply/Acknowledged means the reader
                // moved on: fall back per spec.
                TagState::Reply => {
                    self.state = TagState::Arbitrate;
                    self.slot = u32::MAX; // effectively out of this round
                    None
                }
                TagState::Acknowledged => {
                    // Round moved on after a successful read: flip the
                    // session flags and leave the round.
                    for f in &mut self.flags {
                        *f = !*f;
                    }
                    self.state = TagState::Ready;
                    None
                }
                TagState::Ready => None,
            },
            Command::QueryAdjust { updn, .. } => {
                if self.state == TagState::Arbitrate {
                    // Spec: tag re-draws its slot from the adjusted Q; we
                    // approximate by halving/doubling the remaining count.
                    self.slot = match updn {
                        1 => self.slot.saturating_mul(2),
                        -1 => self.slot / 2,
                        _ => self.slot,
                    };
                    if self.slot == 0 {
                        self.rn16 = rng.random();
                        self.state = TagState::Reply;
                        return Some(Reply::Rn16(self.rn16));
                    }
                }
                None
            }
            Command::Ack { rn16 } => {
                if self.state == TagState::Reply && *rn16 == self.rn16 {
                    self.state = TagState::Acknowledged;
                    let pc = self.epc.pc_word();
                    Some(Reply::EpcFrame {
                        pc,
                        epc: self.epc,
                        crc: self.epc.reply_crc(),
                    })
                } else if self.state == TagState::Reply {
                    // Wrong RN16: back to Arbitrate.
                    self.state = TagState::Arbitrate;
                    self.slot = u32::MAX;
                    None
                } else {
                    None
                }
            }
            Command::Nak => {
                if matches!(self.state, TagState::Reply | TagState::Acknowledged) {
                    self.state = TagState::Arbitrate;
                    self.slot = u32::MAX;
                }
                None
            }
        }
    }
}

/// Verifies an EPC frame the way a reader's baseband would.
pub fn verify_epc_frame(pc: u16, epc: &Epc96, crc: u16) -> bool {
    let mut frame = Vec::with_capacity(14);
    frame.extend_from_slice(&pc.to_be_bytes());
    frame.extend_from_slice(epc.as_bytes());
    crc16(&frame) == crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rf_sim::tags::TagId;

    fn query(q: u8) -> Command {
        Command::Query {
            dr: false,
            m: MillerM::M4,
            trext: true,
            session: Session::S1,
            target: Target::A,
            q,
        }
    }

    #[test]
    fn query_encodes_22_bits_with_valid_crc5() {
        let bits = query(4).encode();
        assert_eq!(bits.len(), 22);
        // CRC over the first 17 bits must equal the trailing 5.
        let payload = &bits[..17];
        let mut crc = 0u8;
        for &b in &bits[17..] {
            crc = (crc << 1) | b as u8;
        }
        assert!(crate::crc::crc5_verify(payload, crc));
    }

    #[test]
    fn command_bit_lengths_match_spec() {
        assert_eq!(query(0).bit_len(), 22);
        assert_eq!(
            Command::QueryRep {
                session: Session::S1
            }
            .bit_len(),
            4
        );
        assert_eq!(
            Command::QueryAdjust {
                session: Session::S1,
                updn: 1
            }
            .bit_len(),
            9
        );
        assert_eq!(Command::Ack { rn16: 0xABCD }.bit_len(), 18);
        assert_eq!(Command::Nak.bit_len(), 8);
    }

    #[test]
    fn full_singulation_walkthrough() {
        let mut rng = StdRng::seed_from_u64(3);
        let epc = Epc96::for_tag(TagId(7));
        let mut tag = TagFsm::new(epc);
        assert_eq!(tag.state(), TagState::Ready);

        // Drive queries until the tag draws slot 0 (retry rounds as a
        // reader would).
        let rn16 = loop {
            if let Some(Reply::Rn16(r)) = tag.handle(&query(2), &mut rng) {
                break r;
            }
            // Step the round with QueryReps until reply or exhaustion.
            let mut got = None;
            for _ in 0..4 {
                if let Some(Reply::Rn16(r)) = tag.handle(
                    &Command::QueryRep {
                        session: Session::S1,
                    },
                    &mut rng,
                ) {
                    got = Some(r);
                    break;
                }
            }
            if let Some(r) = got {
                break r;
            }
        };
        assert_eq!(tag.state(), TagState::Reply);

        // ACK with the right RN16 → EPC frame with a valid CRC.
        let reply = tag.handle(&Command::Ack { rn16 }, &mut rng).expect("EPC");
        match reply {
            Reply::EpcFrame { pc, epc: got, crc } => {
                assert_eq!(got, epc);
                assert!(verify_epc_frame(pc, &got, crc));
            }
            other => panic!("expected EPC frame, got {other:?}"),
        }
        assert_eq!(tag.state(), TagState::Acknowledged);

        // The next QueryRep closes the read: flags flip, tag leaves.
        assert!(tag
            .handle(
                &Command::QueryRep {
                    session: Session::S1
                },
                &mut rng
            )
            .is_none());
        assert_eq!(tag.state(), TagState::Ready);
        assert!(tag.flag(Session::S1), "inventoried flag flipped to B");
    }

    #[test]
    fn wrong_rn16_rejects_ack() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut tag = TagFsm::new(Epc96::for_tag(TagId(1)));
        // Force slot 0 with q=0.
        let reply = tag.handle(&query(0), &mut rng).expect("slot 0 with q=0");
        let rn16 = match reply {
            Reply::Rn16(r) => r,
            other => panic!("{other:?}"),
        };
        assert!(tag
            .handle(
                &Command::Ack {
                    rn16: rn16.wrapping_add(1)
                },
                &mut rng
            )
            .is_none());
        assert_eq!(tag.state(), TagState::Arbitrate);
    }

    #[test]
    fn nak_returns_to_arbitrate() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut tag = TagFsm::new(Epc96::for_tag(TagId(2)));
        tag.handle(&query(0), &mut rng).expect("reply");
        assert_eq!(tag.state(), TagState::Reply);
        tag.handle(&Command::Nak, &mut rng);
        assert_eq!(tag.state(), TagState::Arbitrate);
    }

    #[test]
    fn flag_mismatch_keeps_tag_out_of_round() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut tag = TagFsm::new(Epc96::for_tag(TagId(3)));
        // Tag starts with flag A; target B → no participation.
        let cmd = Command::Query {
            dr: false,
            m: MillerM::M4,
            trext: true,
            session: Session::S1,
            target: Target::B,
            q: 0,
        };
        assert!(tag.handle(&cmd, &mut rng).is_none());
        assert_eq!(tag.state(), TagState::Ready);
    }

    #[test]
    fn collision_scenario_two_tags_same_slot() {
        // Both tags draw slot 0 under q=0: both reply — the reader sees a
        // collision; a NAK returns both to Arbitrate.
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = TagFsm::new(Epc96::for_tag(TagId(10)));
        let mut b = TagFsm::new(Epc96::for_tag(TagId(11)));
        let ra = a.handle(&query(0), &mut rng);
        let rb = b.handle(&query(0), &mut rng);
        assert!(ra.is_some() && rb.is_some());
        a.handle(&Command::Nak, &mut rng);
        b.handle(&Command::Nak, &mut rng);
        assert_eq!(a.state(), TagState::Arbitrate);
        assert_eq!(b.state(), TagState::Arbitrate);
    }

    #[test]
    fn query_adjust_updn_changes_slot() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut tag = TagFsm::new(Epc96::for_tag(TagId(4)));
        // Enter a round with a large Q so the slot is > 0.
        loop {
            tag.handle(&query(8), &mut rng);
            if tag.state() == TagState::Arbitrate {
                break;
            }
        }
        // Halving enough times must eventually trigger a reply.
        let mut replied = false;
        for _ in 0..32 {
            if tag
                .handle(
                    &Command::QueryAdjust {
                        session: Session::S1,
                        updn: -1,
                    },
                    &mut rng,
                )
                .is_some()
            {
                replied = true;
                break;
            }
        }
        assert!(replied, "down-adjusting Q must reach slot 0");
    }

    #[test]
    #[should_panic(expected = "updn must be -1, 0 or 1")]
    fn bad_updn_panics_on_encode() {
        Command::QueryAdjust {
            session: Session::S0,
            updn: 2,
        }
        .encode();
    }
}
