//! Reader-layer metrics, registered once in the process-global
//! [`obs::registry()`].
//!
//! The hot paths only touch cached `Arc<Counter>`s (one relaxed atomic add
//! each); the registry mutex is taken exactly once, on first use. Metric
//! names follow the workspace scheme (DESIGN.md §Observability):
//! `rfid_reader_*`, counters suffixed `_total`.

use obs::Counter;
use std::sync::{Arc, OnceLock};

/// Cached handles to every reader-layer metric.
pub(crate) struct ReaderMetrics {
    /// Tag reports emitted by reader runs.
    pub reads: Arc<Counter>,
    /// Inventory rounds completed.
    pub rounds: Arc<Counter>,
    /// Slots with no reply.
    pub slots_empty: Arc<Counter>,
    /// Slots with colliding replies.
    pub slots_collision: Arc<Counter>,
    /// Successful singulations.
    pub slots_success: Arc<Counter>,
    /// Trace records that failed to decode in a [`crate::source::TraceSource`].
    pub decode_errors: Arc<Counter>,
}

/// The lazily registered reader metrics.
pub(crate) fn reader_metrics() -> &'static ReaderMetrics {
    static METRICS: OnceLock<ReaderMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        let slots = |outcome: &'static str| {
            r.counter(
                "rfid_reader_slots_total",
                "Inventory slots by outcome (empty, collision, success).",
                &[("outcome", outcome)],
            )
        };
        ReaderMetrics {
            reads: r.counter(
                "rfid_reader_reads_total",
                "Tag reports emitted by reader runs.",
                &[],
            ),
            rounds: r.counter(
                "rfid_reader_inventory_rounds_total",
                "Gen2 inventory rounds completed.",
                &[],
            ),
            slots_empty: slots("empty"),
            slots_collision: slots("collision"),
            slots_success: slots("success"),
            decode_errors: r.counter(
                "rfid_reader_trace_decode_errors_total",
                "Trace records that failed to decode in a TraceSource.",
                &[],
            ),
        }
    })
}
