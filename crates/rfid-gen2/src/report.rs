//! The reader-report boundary: the canonical record everything above the
//! reader consumes.
//!
//! Real deployments never see the simulator's internal channel state — they
//! see an LLRP report stream: per inventory hit, an EPC, a timestamp, and
//! the reader's quantized phase/RSS/Doppler measurements, stamped with the
//! antenna port and hop-channel index. [`TagReport`] is that record. The
//! recognition stack (`rfipad`) is written entirely against it, so the same
//! pipeline runs from live simulation ([`crate::source::LiveSource`]),
//! recorded traces ([`crate::source::TraceSource`]), or a future hardware
//! frontend.
//!
//! [`TagId`] is re-exported here because the report stream is where the
//! logical tag identity crosses the boundary (EPC ↔ id via [`Epc96`]);
//! consumers of reports name tags without touching the simulator crate.

use crate::epc::Epc96;
use rf_sim::scene::TagObservation;
use serde::{Deserialize, Serialize};

pub use rf_sim::noise::PHASE_STEP;
pub use rf_sim::tags::TagId;

/// Channel index stamped on reports when the reader runs on a fixed
/// carrier (no hopping plan). Hopping readers report 1-based LLRP channel
/// indices, so 0 is unambiguous.
pub const FIXED_CARRIER_CHANNEL: u16 = 0;

/// One tag report, as an LLRP client receives it: the complete boundary
/// record between the reader and the recognition stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagReport {
    /// The backscattered EPC.
    pub epc: Epc96,
    /// The logical tag id the EPC decodes to.
    pub tag: TagId,
    /// Report timestamp in seconds.
    pub time: f64,
    /// Reported phase in `[0, 2π)`, quantized to the reader resolution
    /// ([`PHASE_STEP`]).
    pub phase: f64,
    /// Reported RSS in dBm, quantized to 0.5 dB.
    pub rss_dbm: f64,
    /// Reported Doppler estimate in Hz (noisy, as the paper observes).
    pub doppler_hz: f64,
    /// Reader antenna port the read arrived on.
    pub antenna_port: u16,
    /// Hop-channel index: 1-based LLRP channel index under a hopping plan,
    /// [`FIXED_CARRIER_CHANNEL`] on a fixed carrier.
    pub channel_index: u16,
}

impl TagReport {
    /// Converts a simulator observation into the boundary record — the one
    /// place the simulator-internal type is allowed to surface.
    pub fn from_observation(obs: &TagObservation, antenna_port: u16, channel_index: u16) -> Self {
        Self {
            epc: Epc96::for_tag(obs.tag),
            tag: obs.tag,
            time: obs.time,
            phase: obs.phase,
            rss_dbm: obs.rss_dbm,
            doppler_hz: obs.doppler_hz,
            antenna_port,
            channel_index,
        }
    }

    /// A synthetic report for tests and hand-built streams: EPC minted
    /// from the tag id, zero Doppler, antenna port 1, fixed carrier.
    pub fn synthetic(tag: TagId, time: f64, phase: f64, rss_dbm: f64) -> Self {
        Self {
            epc: Epc96::for_tag(tag),
            tag,
            time,
            phase,
            rss_dbm,
            doppler_hz: 0.0,
            antenna_port: 1,
            channel_index: FIXED_CARRIER_CHANNEL,
        }
    }
}

/// A structure-of-arrays batch of tag reports: one parallel column per
/// [`TagReport`] field.
///
/// Batching is the ingest stack's unit of amortization — a queue slot, a
/// telemetry record, and a synchronization round-trip cost the same whether
/// they carry one report or sixty-four, so sources decode into a batch and
/// engines move batches. The SoA layout keeps each column densely packed
/// for the per-field passes downstream (time-ordered scans touch only the
/// `time` column) and lets one allocation be reused across refills via
/// [`clear`](Self::clear).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportBatch {
    epc: Vec<Epc96>,
    tag: Vec<TagId>,
    time: Vec<f64>,
    phase: Vec<f64>,
    rss_dbm: Vec<f64>,
    doppler_hz: Vec<f64>,
    antenna_port: Vec<u16>,
    channel_index: Vec<u16>,
}

impl ReportBatch {
    /// An empty batch with no reserved capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with every column pre-sized for `cap` reports.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            epc: Vec::with_capacity(cap),
            tag: Vec::with_capacity(cap),
            time: Vec::with_capacity(cap),
            phase: Vec::with_capacity(cap),
            rss_dbm: Vec::with_capacity(cap),
            doppler_hz: Vec::with_capacity(cap),
            antenna_port: Vec::with_capacity(cap),
            channel_index: Vec::with_capacity(cap),
        }
    }

    /// Number of reports in the batch.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the batch holds no reports.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Empties the batch, keeping each column's allocation for reuse.
    pub fn clear(&mut self) {
        self.epc.clear();
        self.tag.clear();
        self.time.clear();
        self.phase.clear();
        self.rss_dbm.clear();
        self.doppler_hz.clear();
        self.antenna_port.clear();
        self.channel_index.clear();
    }

    /// Appends one report, scattering its fields across the columns.
    pub fn push(&mut self, r: TagReport) {
        self.epc.push(r.epc);
        self.tag.push(r.tag);
        self.time.push(r.time);
        self.phase.push(r.phase);
        self.rss_dbm.push(r.rss_dbm);
        self.doppler_hz.push(r.doppler_hz);
        self.antenna_port.push(r.antenna_port);
        self.channel_index.push(r.channel_index);
    }

    /// Reassembles the report at index `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<TagReport> {
        if i >= self.len() {
            return None;
        }
        Some(TagReport {
            epc: self.epc[i],
            tag: self.tag[i],
            time: self.time[i],
            phase: self.phase[i],
            rss_dbm: self.rss_dbm[i],
            doppler_hz: self.doppler_hz[i],
            antenna_port: self.antenna_port[i],
            channel_index: self.channel_index[i],
        })
    }

    /// Iterates the batch as reassembled [`TagReport`]s, in push order.
    pub fn iter(&self) -> impl Iterator<Item = TagReport> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in bounds"))
    }

    /// The report timestamps column (one entry per report, push order).
    pub fn times(&self) -> &[f64] {
        &self.time
    }
}

impl Extend<TagReport> for ReportBatch {
    fn extend<T: IntoIterator<Item = TagReport>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

impl FromIterator<TagReport> for ReportBatch {
    fn from_iter<T: IntoIterator<Item = TagReport>>(iter: T) -> Self {
        let mut batch = Self::new();
        batch.extend(iter);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_observation_carries_every_field() {
        let obs = TagObservation {
            tag: TagId(7),
            time: 1.25,
            phase: 3.0,
            rss_dbm: -44.5,
            doppler_hz: 0.5,
        };
        let r = TagReport::from_observation(&obs, 3, 12);
        assert_eq!(r.tag, TagId(7));
        assert_eq!(r.epc.to_tag(), Some(TagId(7)));
        assert_eq!(r.time, 1.25);
        assert_eq!(r.phase, 3.0);
        assert_eq!(r.rss_dbm, -44.5);
        assert_eq!(r.doppler_hz, 0.5);
        assert_eq!(r.antenna_port, 3);
        assert_eq!(r.channel_index, 12);
    }

    #[test]
    fn synthetic_defaults() {
        let r = TagReport::synthetic(TagId(4), 0.5, 1.0, -45.0);
        assert_eq!(r.epc, Epc96::for_tag(TagId(4)));
        assert_eq!(r.doppler_hz, 0.0);
        assert_eq!(r.antenna_port, 1);
        assert_eq!(r.channel_index, FIXED_CARRIER_CHANNEL);
    }

    fn sample_reports() -> Vec<TagReport> {
        (0..5)
            .map(|i| {
                let mut r =
                    TagReport::synthetic(TagId(i), i as f64 * 0.1, 1.0 + i as f64 * 0.3, -44.5);
                r.doppler_hz = i as f64 * 0.25 - 0.5;
                r.antenna_port = 1 + (i % 3) as u16;
                r.channel_index = (i % 4) as u16;
                r
            })
            .collect()
    }

    #[test]
    fn batch_round_trips_every_field() {
        let reports = sample_reports();
        let batch: ReportBatch = reports.iter().copied().collect();
        assert_eq!(batch.len(), reports.len());
        assert!(!batch.is_empty());
        for (i, &r) in reports.iter().enumerate() {
            assert_eq!(batch.get(i), Some(r));
        }
        assert_eq!(batch.get(reports.len()), None);
        assert_eq!(batch.iter().collect::<Vec<_>>(), reports);
        assert_eq!(batch.times(), &[0.0, 0.1, 0.2, 0.30000000000000004, 0.4]);
    }

    #[test]
    fn batch_clear_keeps_capacity() {
        let mut batch = ReportBatch::with_capacity(8);
        batch.extend(sample_reports());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.get(0), None);
        // Refill after clear works and observes push order.
        batch.push(TagReport::synthetic(TagId(9), 2.0, 0.5, -40.0));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.get(0).unwrap().tag, TagId(9));
    }
}
