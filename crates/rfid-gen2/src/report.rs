//! The reader-report boundary: the canonical record everything above the
//! reader consumes.
//!
//! Real deployments never see the simulator's internal channel state — they
//! see an LLRP report stream: per inventory hit, an EPC, a timestamp, and
//! the reader's quantized phase/RSS/Doppler measurements, stamped with the
//! antenna port and hop-channel index. [`TagReport`] is that record. The
//! recognition stack (`rfipad`) is written entirely against it, so the same
//! pipeline runs from live simulation ([`crate::source::LiveSource`]),
//! recorded traces ([`crate::source::TraceSource`]), or a future hardware
//! frontend.
//!
//! [`TagId`] is re-exported here because the report stream is where the
//! logical tag identity crosses the boundary (EPC ↔ id via [`Epc96`]);
//! consumers of reports name tags without touching the simulator crate.

use crate::epc::Epc96;
use rf_sim::scene::TagObservation;
use serde::{Deserialize, Serialize};

pub use rf_sim::noise::PHASE_STEP;
pub use rf_sim::tags::TagId;

/// Channel index stamped on reports when the reader runs on a fixed
/// carrier (no hopping plan). Hopping readers report 1-based LLRP channel
/// indices, so 0 is unambiguous.
pub const FIXED_CARRIER_CHANNEL: u16 = 0;

/// One tag report, as an LLRP client receives it: the complete boundary
/// record between the reader and the recognition stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagReport {
    /// The backscattered EPC.
    pub epc: Epc96,
    /// The logical tag id the EPC decodes to.
    pub tag: TagId,
    /// Report timestamp in seconds.
    pub time: f64,
    /// Reported phase in `[0, 2π)`, quantized to the reader resolution
    /// ([`PHASE_STEP`]).
    pub phase: f64,
    /// Reported RSS in dBm, quantized to 0.5 dB.
    pub rss_dbm: f64,
    /// Reported Doppler estimate in Hz (noisy, as the paper observes).
    pub doppler_hz: f64,
    /// Reader antenna port the read arrived on.
    pub antenna_port: u16,
    /// Hop-channel index: 1-based LLRP channel index under a hopping plan,
    /// [`FIXED_CARRIER_CHANNEL`] on a fixed carrier.
    pub channel_index: u16,
}

impl TagReport {
    /// Converts a simulator observation into the boundary record — the one
    /// place the simulator-internal type is allowed to surface.
    pub fn from_observation(obs: &TagObservation, antenna_port: u16, channel_index: u16) -> Self {
        Self {
            epc: Epc96::for_tag(obs.tag),
            tag: obs.tag,
            time: obs.time,
            phase: obs.phase,
            rss_dbm: obs.rss_dbm,
            doppler_hz: obs.doppler_hz,
            antenna_port,
            channel_index,
        }
    }

    /// A synthetic report for tests and hand-built streams: EPC minted
    /// from the tag id, zero Doppler, antenna port 1, fixed carrier.
    pub fn synthetic(tag: TagId, time: f64, phase: f64, rss_dbm: f64) -> Self {
        Self {
            epc: Epc96::for_tag(tag),
            tag,
            time,
            phase,
            rss_dbm,
            doppler_hz: 0.0,
            antenna_port: 1,
            channel_index: FIXED_CARRIER_CHANNEL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_observation_carries_every_field() {
        let obs = TagObservation {
            tag: TagId(7),
            time: 1.25,
            phase: 3.0,
            rss_dbm: -44.5,
            doppler_hz: 0.5,
        };
        let r = TagReport::from_observation(&obs, 3, 12);
        assert_eq!(r.tag, TagId(7));
        assert_eq!(r.epc.to_tag(), Some(TagId(7)));
        assert_eq!(r.time, 1.25);
        assert_eq!(r.phase, 3.0);
        assert_eq!(r.rss_dbm, -44.5);
        assert_eq!(r.doppler_hz, 0.5);
        assert_eq!(r.antenna_port, 3);
        assert_eq!(r.channel_index, 12);
    }

    #[test]
    fn synthetic_defaults() {
        let r = TagReport::synthetic(TagId(4), 0.5, 1.0, -45.0);
        assert_eq!(r.epc, Epc96::for_tag(TagId(4)));
        assert_eq!(r.doppler_hz, 0.0);
        assert_eq!(r.antenna_port, 1);
        assert_eq!(r.channel_index, FIXED_CARRIER_CHANNEL);
    }
}
