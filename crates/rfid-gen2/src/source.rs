//! Pluggable report sources: the recognition stack pulls [`TagReport`]s
//! from a [`ReportSource`] without knowing whether they come from a live
//! reader run, a recorded trace, or (eventually) hardware.

use crate::report::TagReport;
use crate::trace::{
    decode_json_line, detect_format, read_binary_record, TraceError, TraceFormat, BINARY_MAGIC,
};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// A pull-based stream of tag reports.
///
/// Implementations yield reports in timestamp order and return `None` when
/// the stream is exhausted.
pub trait ReportSource {
    /// The next report, or `None` at end of stream.
    fn next_report(&mut self) -> Option<TagReport>;

    /// Drains the remaining reports into a vector.
    fn collect_reports(&mut self) -> Vec<TagReport> {
        let mut out = Vec::new();
        while let Some(r) = self.next_report() {
            out.push(r);
        }
        out
    }
}

/// A source backed by an in-memory report stream — typically the events of
/// a live [`crate::reader::ReaderRun`].
#[derive(Debug)]
pub struct LiveSource {
    reports: std::vec::IntoIter<TagReport>,
}

impl LiveSource {
    /// Wraps an already-collected report stream.
    pub fn new(reports: Vec<TagReport>) -> Self {
        Self {
            reports: reports.into_iter(),
        }
    }
}

impl From<crate::reader::ReaderRun> for LiveSource {
    fn from(run: crate::reader::ReaderRun) -> Self {
        Self::new(run.events)
    }
}

impl ReportSource for LiveSource {
    fn next_report(&mut self) -> Option<TagReport> {
        self.reports.next()
    }
}

enum TraceStream<R: BufRead> {
    Json { reader: R, line_no: usize },
    Binary(R),
}

impl<R: BufRead> std::fmt::Debug for TraceStream<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStream::Json { line_no, .. } => {
                f.debug_struct("Json").field("line_no", line_no).finish()
            }
            TraceStream::Binary(_) => f.write_str("Binary"),
        }
    }
}

/// A source that streams reports from a recorded trace, autodetecting the
/// framing (JSON lines or binary) from the first byte. Records are decoded
/// lazily, so arbitrarily long traces replay in constant memory.
#[derive(Debug)]
pub struct TraceSource<R: BufRead = BufReader<File>> {
    stream: TraceStream<R>,
    error: Option<TraceError>,
}

impl TraceSource<BufReader<File>> {
    /// Opens a trace file for streaming replay.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::from_reader(BufReader::new(File::open(path)?))
    }
}

impl<R: BufRead> TraceSource<R> {
    /// Starts streaming from any buffered reader positioned at the start of
    /// a trace.
    pub fn from_reader(mut reader: R) -> Result<Self, TraceError> {
        let first = reader.fill_buf()?;
        let stream = if first.is_empty() {
            // Empty trace: either framing decodes to zero reports.
            TraceStream::Binary(reader)
        } else {
            match detect_format(first[0])? {
                TraceFormat::JsonLines => TraceStream::Json { reader, line_no: 0 },
                TraceFormat::Binary => {
                    let mut magic = [0u8; 4];
                    reader.read_exact(&mut magic)?;
                    if magic != BINARY_MAGIC {
                        return Err(TraceError::Malformed(format!("bad magic {magic:02x?}")));
                    }
                    TraceStream::Binary(reader)
                }
            }
        };
        Ok(Self {
            stream,
            error: None,
        })
    }

    /// The decode error that terminated the stream early, if any. A fully
    /// consumed, well-formed trace leaves this `None`.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    fn next_inner(&mut self) -> Result<Option<TagReport>, TraceError> {
        match &mut self.stream {
            TraceStream::Json { reader, line_no } => loop {
                let mut line = String::new();
                if reader.read_line(&mut line)? == 0 {
                    return Ok(None);
                }
                *line_no += 1;
                if line.trim().is_empty() {
                    continue;
                }
                return decode_json_line(&line, *line_no).map(Some);
            },
            TraceStream::Binary(reader) => read_binary_record(reader),
        }
    }
}

impl<R: BufRead> ReportSource for TraceSource<R> {
    fn next_report(&mut self) -> Option<TagReport> {
        if self.error.is_some() {
            return None;
        }
        match self.next_inner() {
            Ok(next) => next,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::write_trace;
    use rf_sim::tags::TagId;

    fn sample() -> Vec<TagReport> {
        (0..5)
            .map(|i| TagReport::synthetic(TagId(i), i as f64 * 0.1, 1.0 + i as f64, -45.0))
            .collect()
    }

    #[test]
    fn live_source_yields_in_order() {
        let reports = sample();
        let mut src = LiveSource::new(reports.clone());
        assert_eq!(src.collect_reports(), reports);
        assert!(src.next_report().is_none());
    }

    #[test]
    fn trace_source_streams_both_framings() {
        let reports = sample();
        for format in [TraceFormat::JsonLines, TraceFormat::Binary] {
            let mut buf = Vec::new();
            write_trace(&mut buf, format, &reports).unwrap();
            let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
            assert_eq!(src.collect_reports(), reports);
            assert!(src.error().is_none());
        }
    }

    #[test]
    fn trace_source_empty_stream_is_empty() {
        let mut src = TraceSource::from_reader(&[][..]).unwrap();
        assert!(src.next_report().is_none());
        assert!(src.error().is_none());
    }

    #[test]
    fn trace_source_surfaces_decode_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &sample()).unwrap();
        buf.truncate(buf.len() - 5);
        let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
        let drained = src.collect_reports();
        assert!(drained.len() < 5);
        assert!(src.error().is_some());
    }
}
