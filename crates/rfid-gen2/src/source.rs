//! Pluggable report sources: the recognition stack pulls [`TagReport`]s
//! from a [`ReportSource`] without knowing whether they come from a live
//! reader run, a recorded trace, or (eventually) hardware.

use crate::report::{ReportBatch, TagReport};
use crate::trace::{
    decode_json_line, detect_format, read_binary_record_into, TraceError, TraceFormat,
    BINARY_MAGIC, BINARY_RECORD_LEN,
};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Errors surfaced by report sources: the one error type ingest code
/// propagates for anything that goes wrong between a reader (live, trace,
/// or hardware) and the recognition stack.
#[derive(Debug)]
#[non_exhaustive]
pub enum SourceError {
    /// A trace decode or framing failure.
    Trace(TraceError),
    /// An underlying I/O failure outside trace framing.
    Io(std::io::Error),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Trace(e) => write!(f, "trace source: {e}"),
            SourceError::Io(e) => write!(f, "source I/O error: {e}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Trace(e) => Some(e),
            SourceError::Io(e) => Some(e),
        }
    }
}

impl From<TraceError> for SourceError {
    fn from(e: TraceError) -> Self {
        SourceError::Trace(e)
    }
}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e)
    }
}

/// A pull-based stream of tag reports.
///
/// Implementations yield reports in timestamp order and return `None` when
/// the stream is exhausted. The trait is object-safe — ingest engines hold
/// heterogeneous sources as `Box<dyn ReportSource + Send>`.
pub trait ReportSource {
    /// The next report, or `None` at end of stream.
    fn next_report(&mut self) -> Option<TagReport>;

    /// Decodes up to `max` reports into `out`, returning how many were
    /// appended. Returns `0` only at end of stream (or when `max == 0`), so
    /// ingest loops can treat it exactly like a batched `next_report`.
    ///
    /// `out` is **not** cleared — callers reuse one batch across refills by
    /// clearing it themselves, which is the point: one allocation and one
    /// downstream hand-off per batch instead of per report. The default
    /// implementation loops [`next_report`](Self::next_report); sources
    /// with cheaper bulk decodes (e.g. binary [`TraceSource`]) override it.
    fn next_batch(&mut self, max: usize, out: &mut ReportBatch) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_report() {
                Some(r) => {
                    out.push(r);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// The error that terminated the stream early, if any. A fully
    /// consumed, well-formed stream leaves this `None`; infallible sources
    /// never set it.
    fn error(&self) -> Option<&SourceError> {
        None
    }

    /// Drains the remaining reports into a vector.
    fn collect_reports(&mut self) -> Vec<TagReport> {
        let mut out = Vec::new();
        while let Some(r) = self.next_report() {
            out.push(r);
        }
        out
    }

    /// Takes ownership of the terminating error, leaving the source with
    /// none recorded. Infallible sources return `None`.
    fn take_error(&mut self) -> Option<SourceError> {
        None
    }

    /// Drains the remaining reports, surfacing the terminating error (if
    /// the stream died mid-way) instead of silently truncating.
    fn try_collect_reports(&mut self) -> Result<Vec<TagReport>, SourceError> {
        let out = self.collect_reports();
        match self.take_error() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl<S: ReportSource + ?Sized> ReportSource for Box<S> {
    fn next_report(&mut self) -> Option<TagReport> {
        (**self).next_report()
    }

    fn next_batch(&mut self, max: usize, out: &mut ReportBatch) -> usize {
        (**self).next_batch(max, out)
    }

    fn error(&self) -> Option<&SourceError> {
        (**self).error()
    }

    fn take_error(&mut self) -> Option<SourceError> {
        (**self).take_error()
    }
}

/// A source backed by an in-memory report stream — typically the events of
/// a live [`crate::reader::ReaderRun`].
#[derive(Debug)]
pub struct LiveSource {
    reports: std::vec::IntoIter<TagReport>,
}

impl LiveSource {
    /// Wraps an already-collected report stream.
    pub fn new(reports: Vec<TagReport>) -> Self {
        Self {
            reports: reports.into_iter(),
        }
    }
}

impl From<crate::reader::ReaderRun> for LiveSource {
    fn from(run: crate::reader::ReaderRun) -> Self {
        Self::new(run.events)
    }
}

impl ReportSource for LiveSource {
    fn next_report(&mut self) -> Option<TagReport> {
        self.reports.next()
    }
}

enum TraceStream<R: BufRead> {
    Json { reader: R, line_no: usize },
    Binary(R),
}

impl<R: BufRead> std::fmt::Debug for TraceStream<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStream::Json { line_no, .. } => {
                f.debug_struct("Json").field("line_no", line_no).finish()
            }
            TraceStream::Binary(_) => f.write_str("Binary"),
        }
    }
}

/// A source that streams reports from a recorded trace, autodetecting the
/// framing (JSON lines or binary) from the first byte. Records are decoded
/// lazily, so arbitrarily long traces replay in constant memory.
#[derive(Debug)]
pub struct TraceSource<R: BufRead = BufReader<File>> {
    stream: TraceStream<R>,
    error: Option<SourceError>,
    // Decode scratch, reused across records so a replay loop (single-record
    // or batched) allocates once per source rather than once per record.
    scratch: Vec<u8>,
    line: String,
}

impl TraceSource<BufReader<File>> {
    /// Opens a trace file for streaming replay.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SourceError> {
        Self::from_reader(BufReader::new(File::open(path).map_err(SourceError::Io)?))
    }
}

impl<R: BufRead> TraceSource<R> {
    /// Starts streaming from any buffered reader positioned at the start of
    /// a trace.
    pub fn from_reader(mut reader: R) -> Result<Self, SourceError> {
        let first = reader.fill_buf().map_err(TraceError::from)?;
        let stream = if first.is_empty() {
            // Empty trace: either framing decodes to zero reports.
            TraceStream::Binary(reader)
        } else {
            match detect_format(first[0])? {
                TraceFormat::JsonLines => TraceStream::Json { reader, line_no: 0 },
                TraceFormat::Binary => {
                    // Byte-wise read: a trace that ends inside the magic is
                    // a truncated file, a typed decode fault — not a
                    // generic `UnexpectedEof`.
                    let mut magic = [0u8; 4];
                    let mut filled = 0usize;
                    while filled < magic.len() {
                        match reader.read(&mut magic[filled..]) {
                            Ok(0) => {
                                return Err(TraceError::Malformed(format!(
                                    "truncated magic ({filled} of 4 bytes)"
                                ))
                                .into())
                            }
                            Ok(n) => filled += n,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) => return Err(TraceError::from(e).into()),
                        }
                    }
                    if magic != BINARY_MAGIC {
                        return Err(TraceError::Malformed(format!("bad magic {magic:02x?}")).into());
                    }
                    TraceStream::Binary(reader)
                }
            }
        };
        Ok(Self {
            stream,
            error: None,
            scratch: Vec::with_capacity(BINARY_RECORD_LEN),
            line: String::new(),
        })
    }

    /// The decode error that terminated the stream early, if any. A fully
    /// consumed, well-formed trace leaves this `None`.
    pub fn error(&self) -> Option<&SourceError> {
        self.error.as_ref()
    }

    fn next_inner(&mut self) -> Result<Option<TagReport>, TraceError> {
        let Self {
            stream,
            scratch,
            line,
            ..
        } = self;
        match stream {
            TraceStream::Json { reader, line_no } => loop {
                line.clear();
                if reader.read_line(line)? == 0 {
                    return Ok(None);
                }
                *line_no += 1;
                if line.trim().is_empty() {
                    continue;
                }
                return decode_json_line(line, *line_no).map(Some);
            },
            TraceStream::Binary(reader) => read_binary_record_into(reader, scratch),
        }
    }

    fn record_error(&mut self, e: TraceError) {
        crate::telemetry::reader_metrics().decode_errors.inc();
        obs::warn!("trace decode error terminated the stream: {e}");
        self.error = Some(e.into());
    }
}

impl<R: BufRead> ReportSource for TraceSource<R> {
    fn next_report(&mut self) -> Option<TagReport> {
        if self.error.is_some() {
            return None;
        }
        match self.next_inner() {
            Ok(next) => next,
            Err(e) => {
                self.record_error(e);
                None
            }
        }
    }

    /// A batched decode sharing the source's scratch buffers: the whole
    /// refill runs without touching the allocator, and a mid-batch decode
    /// error ends the batch (and the stream) exactly like
    /// [`next_report`](ReportSource::next_report) would.
    fn next_batch(&mut self, max: usize, out: &mut ReportBatch) -> usize {
        let mut n = 0;
        while n < max && self.error.is_none() {
            match self.next_inner() {
                Ok(Some(r)) => {
                    out.push(r);
                    n += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    self.record_error(e);
                    break;
                }
            }
        }
        n
    }

    fn error(&self) -> Option<&SourceError> {
        self.error.as_ref()
    }

    fn take_error(&mut self) -> Option<SourceError> {
        self.error.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::write_trace;
    use rf_sim::tags::TagId;

    fn sample() -> Vec<TagReport> {
        (0..5)
            .map(|i| TagReport::synthetic(TagId(i), i as f64 * 0.1, 1.0 + i as f64, -45.0))
            .collect()
    }

    #[test]
    fn live_source_yields_in_order() {
        let reports = sample();
        let mut src = LiveSource::new(reports.clone());
        assert_eq!(src.collect_reports(), reports);
        assert!(src.next_report().is_none());
    }

    #[test]
    fn trace_source_streams_both_framings() {
        let reports = sample();
        for format in [TraceFormat::JsonLines, TraceFormat::Binary] {
            let mut buf = Vec::new();
            write_trace(&mut buf, format, &reports).unwrap();
            let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
            assert_eq!(src.collect_reports(), reports);
            assert!(src.error().is_none());
        }
    }

    fn drain_batched(src: &mut impl ReportSource, max: usize) -> Vec<TagReport> {
        let mut batch = ReportBatch::new();
        let mut out = Vec::new();
        loop {
            batch.clear();
            let n = src.next_batch(max, &mut batch);
            assert_eq!(n, batch.len());
            if n == 0 {
                return out;
            }
            out.extend(batch.iter());
        }
    }

    #[test]
    fn next_batch_matches_serial_for_both_framings() {
        let reports = sample();
        for format in [TraceFormat::JsonLines, TraceFormat::Binary] {
            for max in [1, 2, 5, 64] {
                let mut buf = Vec::new();
                write_trace(&mut buf, format, &reports).unwrap();
                let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
                assert_eq!(
                    drain_batched(&mut src, max),
                    reports,
                    "{format:?} max={max}"
                );
                assert!(src.error().is_none());
            }
        }
    }

    #[test]
    fn next_batch_default_impl_covers_live_source() {
        let reports = sample();
        let mut src = LiveSource::new(reports.clone());
        let mut batch = ReportBatch::new();
        assert_eq!(src.next_batch(3, &mut batch), 3);
        assert_eq!(src.next_batch(3, &mut batch), 2, "partial final batch");
        assert_eq!(src.next_batch(3, &mut batch), 0, "exhausted");
        assert_eq!(batch.iter().collect::<Vec<_>>(), reports);
    }

    #[test]
    fn next_batch_appends_without_clearing() {
        let mut src = LiveSource::new(sample());
        let mut batch = ReportBatch::new();
        batch.push(TagReport::synthetic(TagId(42), 9.0, 0.0, -50.0));
        src.next_batch(2, &mut batch);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0).unwrap().tag, TagId(42));
    }

    #[test]
    fn next_batch_surfaces_decode_error_like_serial() {
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &sample()).unwrap();
        buf.truncate(buf.len() - 5);
        let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
        let mut batch = ReportBatch::new();
        let n = src.next_batch(64, &mut batch);
        assert_eq!(n, 4, "well-formed prefix decodes before the error");
        assert!(src.error().is_some());
        assert_eq!(src.next_batch(64, &mut batch), 0, "stream stays dead");
    }

    #[test]
    fn next_batch_forwards_through_box() {
        let reports = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &reports).unwrap();
        let mut boxed: Box<dyn ReportSource + Send> =
            Box::new(TraceSource::from_reader(buf.as_slice()).unwrap());
        assert_eq!(drain_batched(&mut boxed, 2), reports);
    }

    #[test]
    fn trace_source_empty_stream_is_empty() {
        let mut src = TraceSource::from_reader(&[][..]).unwrap();
        assert!(src.next_report().is_none());
        assert!(src.error().is_none());
    }

    #[test]
    fn trace_source_surfaces_decode_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &sample()).unwrap();
        buf.truncate(buf.len() - 5);
        let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
        let drained = src.collect_reports();
        assert!(drained.len() < 5);
        assert!(src.error().is_some());
    }

    #[test]
    fn truncated_binary_frame_is_typed_not_panic() {
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &sample()).unwrap();
        // Cut inside the length prefix of the final record: a partial
        // prefix is a truncated frame, not a clean end of stream.
        buf.truncate(buf.len() - (4 + crate::trace::BINARY_RECORD_LEN) + 2);
        let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
        match src.try_collect_reports() {
            Err(SourceError::Trace(TraceError::Malformed(reason))) => {
                assert!(reason.contains("length prefix"), "{reason}");
            }
            other => panic!("expected truncated-frame error, got {other:?}"),
        }
        // The error was taken; the source is drained and quiescent.
        assert!(src.error().is_none());
        assert!(src.next_report().is_none());
    }

    #[test]
    fn corrupt_binary_length_prefix_is_malformed() {
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &sample()).unwrap();
        // Overwrite the first record's length prefix with nonsense.
        buf[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
        match src.try_collect_reports() {
            Err(SourceError::Trace(TraceError::Malformed(reason))) => {
                assert!(reason.contains("record length"), "{reason}");
            }
            other => panic!("expected malformed-record error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_json_line_is_typed_with_line_number() {
        let reports = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::JsonLines, &reports).unwrap();
        buf.extend_from_slice(b"{\"epc\":\"nope\"}\n");
        let mut src = TraceSource::from_reader(buf.as_slice()).unwrap();
        let drained = src.collect_reports();
        assert_eq!(drained, reports, "well-formed prefix still decodes");
        match src.take_error() {
            Some(SourceError::Trace(TraceError::Parse { line, .. })) => {
                assert_eq!(line, reports.len() + 1);
            }
            other => panic!("expected parse error with line number, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_opens_and_yields_nothing() {
        let path =
            std::env::temp_dir().join(format!("rfipad-empty-trace-{}.rftrace", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let mut src = TraceSource::open(&path).unwrap();
        assert_eq!(src.try_collect_reports().unwrap(), Vec::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_typed_io_error() {
        match TraceSource::open("/nonexistent/rfipad/trace.rftrace") {
            Err(SourceError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected I/O error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn garbage_first_byte_is_typed_malformed() {
        match TraceSource::from_reader(&b"\x00\x01\x02"[..]) {
            Err(SourceError::Trace(TraceError::Malformed(_))) => {}
            other => panic!("expected malformed error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn sources_are_object_safe_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LiveSource>();
        assert_send::<TraceSource>();
        assert_send::<SourceError>();
        assert_send::<Box<dyn ReportSource + Send>>();

        // Heterogeneous boxed sources drain through the same trait object.
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &sample()).unwrap();
        let boxed: Vec<Box<dyn ReportSource + Send>> = vec![
            Box::new(LiveSource::new(sample())),
            Box::new(TraceSource::from_reader(std::io::Cursor::new(buf)).unwrap()),
        ];
        for mut src in boxed {
            assert_eq!(src.try_collect_reports().unwrap(), sample());
        }
    }
}
