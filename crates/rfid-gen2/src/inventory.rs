//! Slotted-ALOHA inventory with the Gen2 Q-algorithm.
//!
//! An inventory round opens with a Query carrying the slot-count exponent
//! `Q`; each participating tag draws a slot in `[0, 2^Q)` and replies with
//! an RN16 when its counter reaches zero. Empty and collision slots waste
//! link time (see [`crate::link`]), and the reader adapts `Q` to the
//! population with the floating-point Q-algorithm from the Gen2 annex.
//!
//! Session semantics: each tag carries an inventoried flag (A/B) per
//! session; a successful singulation flips it. In *dual-target* mode the
//! reader alternates the targeted flag each round, so a static population is
//! read continuously — the mode any monitoring deployment (and RFIPad) runs.

use crate::link::LinkParams;
use rand::Rng;
use rf_sim::tags::TagId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Gen2 inventoried-flag values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Flag {
    /// Session flag A (the power-up default).
    A,
    /// Session flag B.
    B,
}

impl Flag {
    /// The opposite flag.
    pub fn flipped(self) -> Flag {
        match self {
            Flag::A => Flag::B,
            Flag::B => Flag::A,
        }
    }
}

/// How the reader targets session flags across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchMode {
    /// Alternate the targeted flag every round — tags are re-read
    /// continuously. The right mode for RFIPad-style monitoring.
    DualTarget,
    /// Always target flag A; tags fall silent after one read until their
    /// flag persistence resets (not modelled). Used for one-shot census.
    SingleTargetA,
}

/// The floating-point Q-adaptation algorithm from the Gen2 specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QAlgorithm {
    qfp: f64,
    c: f64,
    min_q: u8,
    max_q: u8,
}

impl QAlgorithm {
    /// Creates the adapter with an initial Q and the spec-suggested step
    /// `C = 0.35`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_q > 15`.
    pub fn new(initial_q: u8) -> Self {
        assert!(initial_q <= 15, "Q must be ≤ 15");
        Self {
            qfp: initial_q as f64,
            c: 0.35,
            min_q: 0,
            max_q: 15,
        }
    }

    /// Current integer Q.
    pub fn q(&self) -> u8 {
        self.qfp.round() as u8
    }

    /// Records an empty slot (decrease Q).
    pub fn on_empty(&mut self) {
        self.qfp = (self.qfp - self.c).max(self.min_q as f64);
    }

    /// Records a collision slot (increase Q).
    pub fn on_collision(&mut self) {
        self.qfp = (self.qfp + self.c).min(self.max_q as f64);
    }

    /// Records a successful singulation (Q unchanged, per the spec).
    pub fn on_success(&mut self) {}

    /// Resets the adapter to a given Q (used when the reader retargets the
    /// opposite session flag and the expected population jumps back up).
    pub fn reset(&mut self, q: u8) {
        assert!(q <= 15, "Q must be ≤ 15");
        self.qfp = q as f64;
    }
}

/// Outcome of a single slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Two or more tags replied; RN16s collided.
    Collision,
    /// Exactly one tag was singulated and delivered its EPC.
    Success(TagId),
}

/// Counters describing an inventory run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InventoryStats {
    /// Inventory rounds started.
    pub rounds: u64,
    /// Total slots elapsed.
    pub slots: u64,
    /// Slots with no reply.
    pub empties: u64,
    /// Slots with colliding replies.
    pub collisions: u64,
    /// Successful singulations.
    pub successes: u64,
}

impl InventoryStats {
    /// Successful reads per slot — the MAC efficiency (theoretical ALOHA
    /// optimum ≈ 0.37 with ideal Q).
    pub fn efficiency(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.successes as f64 / self.slots as f64
        }
    }
}

/// A running Gen2 inventory: persistent session flags, adaptive Q, and a
/// simulated wall clock advanced by the link timing of each slot.
#[derive(Debug, Clone)]
pub struct Inventory {
    link: LinkParams,
    q: QAlgorithm,
    initial_q: u8,
    search: SearchMode,
    flags: HashMap<TagId, Flag>,
    target: Flag,
    time: f64,
    stats: InventoryStats,
}

impl Inventory {
    /// Creates an inventory starting at simulated time `start` seconds.
    pub fn new(link: LinkParams, initial_q: u8, search: SearchMode, start: f64) -> Self {
        Self {
            link,
            q: QAlgorithm::new(initial_q),
            initial_q,
            search,
            flags: HashMap::new(),
            target: Flag::A,
            time: start,
            stats: InventoryStats::default(),
        }
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &InventoryStats {
        &self.stats
    }

    /// Link parameters in use.
    pub fn link(&self) -> &LinkParams {
        &self.link
    }

    /// Runs rounds until the simulated clock passes `until`.
    ///
    /// `powered` is queried with the current time and must return the tags
    /// whose forward link is live at that instant (the scene decides).
    /// `on_read` receives each singulated tag and the singulation time.
    pub fn run<R, P, F>(&mut self, until: f64, rng: &mut R, mut powered: P, mut on_read: F)
    where
        R: Rng + ?Sized,
        P: FnMut(f64) -> Vec<TagId>,
        F: FnMut(TagId, f64),
    {
        while self.time < until {
            self.run_round(rng, &mut powered, &mut on_read, until);
        }
    }

    /// Runs one full inventory round (Query + its slots), stopping early if
    /// the clock passes `until`.
    fn run_round<R, P, F>(&mut self, rng: &mut R, powered: &mut P, on_read: &mut F, until: f64)
    where
        R: Rng + ?Sized,
        P: FnMut(f64) -> Vec<TagId>,
        F: FnMut(TagId, f64),
    {
        self.stats.rounds += 1;
        self.time += self.link.query_s();
        let q = self.q.q();
        let slot_count: u64 = 1 << q;

        // Participating tags draw their slot counters.
        let mut draws: HashMap<u64, Vec<TagId>> = HashMap::new();
        let mut participants = 0usize;
        for id in powered(self.time) {
            let flag = *self.flags.entry(id).or_insert(Flag::A);
            if flag == self.target {
                participants += 1;
                let slot = rng.random_range(0..slot_count);
                draws.entry(slot).or_default().push(id);
            }
        }

        // The current target population is exhausted: in dual-target mode
        // retarget the opposite flag so the (static) population is read
        // continuously, and restart Q at its initial value since the
        // expected population jumps back up. A short probe round (the
        // remaining empty slots are skipped — real readers close the round
        // with a Query rather than stepping through every slot).
        if participants == 0 {
            self.stats.slots += 1;
            self.stats.empties += 1;
            self.time += self.link.empty_slot_s();
            if self.search == SearchMode::DualTarget {
                self.target = self.target.flipped();
                self.q.reset(self.initial_q);
            }
            return;
        }

        for slot in 0..slot_count {
            if self.time >= until {
                return;
            }
            // Per the Gen2 Q-algorithm flow, the reader abandons the round
            // (issuing a fresh Query) once the floating-point Q rounds to a
            // different value than the round was started with.
            if self.q.q() != q {
                return;
            }
            self.stats.slots += 1;
            let outcome = match draws.get(&slot).map(|v| v.as_slice()) {
                None | Some([]) => SlotOutcome::Empty,
                Some([only]) => SlotOutcome::Success(*only),
                Some(_) => SlotOutcome::Collision,
            };
            match outcome {
                SlotOutcome::Empty => {
                    self.stats.empties += 1;
                    self.q.on_empty();
                    self.time += self.link.empty_slot_s();
                }
                SlotOutcome::Collision => {
                    self.stats.collisions += 1;
                    self.q.on_collision();
                    self.time += self.link.collision_slot_s();
                }
                SlotOutcome::Success(id) => {
                    self.stats.successes += 1;
                    self.q.on_success();
                    // Sample the channel at the middle of the EPC reply.
                    let read_time = self.time + self.link.success_slot_s() * 0.7;
                    // The tag must still be powered when it backscatters its
                    // EPC (the hand may have just shadowed it).
                    if powered(read_time).contains(&id) {
                        self.flags.insert(id, self.target.flipped());
                        on_read(id, read_time);
                    }
                    self.time += self.link.success_slot_s();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: u64) -> Vec<TagId> {
        (0..n).map(TagId).collect()
    }

    #[test]
    fn q_algorithm_adapts_within_bounds() {
        let mut q = QAlgorithm::new(4);
        for _ in 0..100 {
            q.on_empty();
        }
        assert_eq!(q.q(), 0);
        for _ in 0..100 {
            q.on_collision();
        }
        assert_eq!(q.q(), 15);
    }

    #[test]
    #[should_panic(expected = "Q must be ≤ 15")]
    fn q_rejects_out_of_range() {
        QAlgorithm::new(16);
    }

    #[test]
    fn flag_flips() {
        assert_eq!(Flag::A.flipped(), Flag::B);
        assert_eq!(Flag::B.flipped().flipped(), Flag::B);
    }

    #[test]
    fn all_tags_read_in_dual_target_mode() {
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            4,
            SearchMode::DualTarget,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut reads: HashMap<TagId, u32> = HashMap::new();
        inv.run(
            2.0,
            &mut rng,
            |_t| population(25),
            |id, _t| *reads.entry(id).or_default() += 1,
        );
        assert_eq!(reads.len(), 25, "every tag read at least once");
        let min_reads = reads.values().min().copied().unwrap_or(0);
        assert!(min_reads >= 3, "per-tag reads in 2 s: min {min_reads}");
    }

    #[test]
    fn single_target_reads_each_tag_once() {
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            4,
            SearchMode::SingleTargetA,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut reads: HashMap<TagId, u32> = HashMap::new();
        inv.run(
            3.0,
            &mut rng,
            |_t| population(10),
            |id, _t| *reads.entry(id).or_default() += 1,
        );
        assert_eq!(reads.len(), 10);
        assert!(reads.values().all(|&c| c == 1), "{reads:?}");
    }

    #[test]
    fn per_tag_rate_matches_paper_scale() {
        // 25 tags on an M=4 link: expect a per-tag read rate in the tens of
        // hertz — the sampling density the RFIPad pipeline is built for.
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            5,
            SearchMode::DualTarget,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut count = 0u64;
        inv.run(5.0, &mut rng, |_t| population(25), |_id, _t| count += 1);
        let per_tag_hz = count as f64 / 25.0 / 5.0;
        assert!(
            per_tag_hz > 3.0 && per_tag_hz < 40.0,
            "per-tag rate {per_tag_hz} Hz"
        );
    }

    #[test]
    fn efficiency_reasonable_after_adaptation() {
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            8,
            SearchMode::DualTarget,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(4);
        inv.run(5.0, &mut rng, |_t| population(25), |_id, _t| {});
        let eff = inv.stats().efficiency();
        assert!(eff > 0.12 && eff < 0.6, "efficiency {eff}");
    }

    #[test]
    fn empty_population_just_burns_slots() {
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            2,
            SearchMode::DualTarget,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut reads = 0;
        inv.run(0.5, &mut rng, |_t| Vec::new(), |_id, _t| reads += 1);
        assert_eq!(reads, 0);
        assert!(inv.stats().empties > 0);
        assert_eq!(inv.stats().successes, 0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut inv = Inventory::new(LinkParams::fast(), 3, SearchMode::DualTarget, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut last = 1.0;
        inv.run(
            1.5,
            &mut rng,
            |_t| population(8),
            |_id, t| {
                assert!(t >= last, "time went backwards");
                last = t;
            },
        );
        assert!(inv.time() >= 1.5);
    }

    #[test]
    fn read_times_within_run_window() {
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            4,
            SearchMode::DualTarget,
            2.0,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let mut times = Vec::new();
        inv.run(3.0, &mut rng, |_t| population(5), |_id, t| times.push(t));
        assert!(!times.is_empty());
        assert!(times.iter().all(|&t| (2.0..3.2).contains(&t)));
    }

    #[test]
    fn tag_unpowered_at_reply_time_is_not_reported() {
        // Power the tag for the query but never afterwards: the singulation
        // must not produce a read.
        let mut inv = Inventory::new(
            LinkParams::dense_reader_m4(),
            0,
            SearchMode::DualTarget,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut reads = 0;
        let mut first_call = true;
        inv.run(
            0.05,
            &mut rng,
            move |_t| {
                if first_call {
                    first_call = false;
                    vec![TagId(0)]
                } else {
                    Vec::new()
                }
            },
            |_id, _t| reads += 1,
        );
        assert_eq!(reads, 0);
    }
}
