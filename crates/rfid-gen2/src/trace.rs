//! Trace record/replay: serializing the report stream to disk and back.
//!
//! Two framings of the same [`TagReport`] stream:
//!
//! - **JSON lines** (`.jsonl`): one self-describing JSON object per line —
//!   greppable, diffable, and editable. Floats are printed with Rust's
//!   shortest round-trip formatting, so a decoded trace is bit-identical
//!   to the recorded stream. (The workspace's offline `serde` stand-in has
//!   no serializer, so the codec writes the JSON framing directly.)
//! - **Binary** (`.rftrace`): a 4-byte magic (`RFT1`) followed by
//!   length-prefixed fixed-layout records (big-endian, floats as IEEE-754
//!   bits via the vendored `bytes` buffers) — compact and exact by
//!   construction.
//!
//! [`read_trace`] autodetects the framing from the first byte, so replay
//! tooling never needs to be told which flavour a file is.

use crate::epc::Epc96;
use crate::report::TagReport;
use bytes::{Buf, BufMut, BytesMut};
use rf_sim::tags::TagId;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes opening a binary trace file.
pub const BINARY_MAGIC: [u8; 4] = *b"RFT1";

/// Byte length of one binary record body (EPC 12 + tag 8 + four f64 fields
/// 32 + antenna 2 + channel 2).
pub const BINARY_RECORD_LEN: usize = 12 + 8 + 4 * 8 + 2 + 2;

/// On-disk framing of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line.
    JsonLines,
    /// Magic header plus length-prefixed fixed-layout records.
    Binary,
}

impl TraceFormat {
    /// Conventional file extension for the framing.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::JsonLines => "jsonl",
            TraceFormat::Binary => "rftrace",
        }
    }
}

/// Errors produced while reading or writing traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A malformed JSON line (1-based line number and reason).
    Parse {
        /// Line number the error was found on.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A malformed binary record or header.
    Malformed(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, reason } => {
                write!(f, "trace parse error on line {line}: {reason}")
            }
            TraceError::Malformed(reason) => write!(f, "malformed binary trace: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Encodes one report as a JSON object (no trailing newline). Floats use
/// Rust's shortest round-trip formatting, so decoding recovers the exact
/// bits.
pub fn encode_json_line(r: &TagReport) -> String {
    let mut epc_hex = String::with_capacity(24);
    for b in r.epc.as_bytes() {
        epc_hex.push_str(&format!("{b:02x}"));
    }
    format!(
        "{{\"epc\":\"{epc_hex}\",\"tag\":{},\"time\":{},\"phase\":{},\"rss_dbm\":{},\"doppler_hz\":{},\"antenna_port\":{},\"channel_index\":{}}}",
        r.tag.0, r.time, r.phase, r.rss_dbm, r.doppler_hz, r.antenna_port, r.channel_index
    )
}

fn parse_err(line: usize, reason: impl Into<String>) -> TraceError {
    TraceError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Decodes one JSON trace line (field order independent). `line_no` is the
/// 1-based line number used in error messages.
pub fn decode_json_line(line: &str, line_no: usize) -> Result<TagReport, TraceError> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| parse_err(line_no, "not a JSON object"))?;

    let mut epc = None;
    let mut tag = None;
    let mut time = None;
    let mut phase = None;
    let mut rss = None;
    let mut doppler = None;
    let mut antenna = None;
    let mut channel = None;

    // The only string field (epc) is fixed-charset hex, so splitting the
    // object body on commas is unambiguous.
    for field in body.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| parse_err(line_no, format!("field without ':': {field:?}")))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "epc" => {
                let hex = value.trim_matches('"');
                if hex.len() != 24 {
                    return Err(parse_err(line_no, format!("EPC hex length {}", hex.len())));
                }
                let mut bytes = [0u8; 12];
                for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
                    let pair = std::str::from_utf8(chunk)
                        .map_err(|_| parse_err(line_no, "EPC not UTF-8"))?;
                    bytes[i] = u8::from_str_radix(pair, 16)
                        .map_err(|_| parse_err(line_no, format!("EPC hex digit {pair:?}")))?;
                }
                epc = Some(Epc96::from_bytes(bytes));
            }
            "tag" => {
                tag =
                    Some(TagId(value.parse().map_err(|_| {
                        parse_err(line_no, format!("tag id {value:?}"))
                    })?));
            }
            "time" | "phase" | "rss_dbm" | "doppler_hz" => {
                let v: f64 = value
                    .parse()
                    .map_err(|_| parse_err(line_no, format!("number {value:?} for {key}")))?;
                match key {
                    "time" => time = Some(v),
                    "phase" => phase = Some(v),
                    "rss_dbm" => rss = Some(v),
                    _ => doppler = Some(v),
                }
            }
            "antenna_port" | "channel_index" => {
                let v: u16 = value
                    .parse()
                    .map_err(|_| parse_err(line_no, format!("u16 {value:?} for {key}")))?;
                if key == "antenna_port" {
                    antenna = Some(v);
                } else {
                    channel = Some(v);
                }
            }
            other => return Err(parse_err(line_no, format!("unknown field {other:?}"))),
        }
    }

    let missing = |name: &str| parse_err(line_no, format!("missing field {name:?}"));
    Ok(TagReport {
        epc: epc.ok_or_else(|| missing("epc"))?,
        tag: tag.ok_or_else(|| missing("tag"))?,
        time: time.ok_or_else(|| missing("time"))?,
        phase: phase.ok_or_else(|| missing("phase"))?,
        rss_dbm: rss.ok_or_else(|| missing("rss_dbm"))?,
        doppler_hz: doppler.ok_or_else(|| missing("doppler_hz"))?,
        antenna_port: antenna.ok_or_else(|| missing("antenna_port"))?,
        channel_index: channel.ok_or_else(|| missing("channel_index"))?,
    })
}

/// Encodes one report as a length-prefixed binary record.
pub fn encode_binary_record(r: &TagReport) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4 + BINARY_RECORD_LEN);
    buf.put_u32(BINARY_RECORD_LEN as u32);
    buf.put_slice(r.epc.as_bytes());
    buf.put_u64(r.tag.0);
    buf.put_u64(r.time.to_bits());
    buf.put_u64(r.phase.to_bits());
    buf.put_u64(r.rss_dbm.to_bits());
    buf.put_u64(r.doppler_hz.to_bits());
    buf.put_u16(r.antenna_port);
    buf.put_u16(r.channel_index);
    buf.to_vec()
}

/// Reads one length-prefixed binary record, or `None` at a clean
/// end-of-stream.
pub fn read_binary_record<R: Read>(reader: &mut R) -> Result<Option<TagReport>, TraceError> {
    let mut scratch = Vec::with_capacity(BINARY_RECORD_LEN);
    read_binary_record_into(reader, &mut scratch)
}

/// Like [`read_binary_record`] but decoding through a caller-owned scratch
/// buffer, so a replay loop allocates once instead of per record.
pub fn read_binary_record_into<R: Read>(
    reader: &mut R,
    scratch: &mut Vec<u8>,
) -> Result<Option<TagReport>, TraceError> {
    // Read the length prefix byte-wise: zero bytes is a clean end of
    // stream, a *partial* prefix is a truncated frame and must surface as
    // an error, not silently end the trace.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(TraceError::Malformed(format!(
                    "truncated record length prefix ({filled} of 4 bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len != BINARY_RECORD_LEN {
        return Err(TraceError::Malformed(format!(
            "record length {len}, expected {BINARY_RECORD_LEN}"
        )));
    }
    scratch.clear();
    scratch.resize(len, 0);
    // Same byte-wise discipline for the body: EOF after a valid length
    // prefix is a truncated record, a typed decode fault — not a generic
    // `UnexpectedEof` I/O error and never a silent end of stream.
    let mut filled = 0usize;
    while filled < len {
        match reader.read(&mut scratch[filled..]) {
            Ok(0) => {
                return Err(TraceError::Malformed(format!(
                    "truncated record body ({filled} of {len} bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let mut buf: &[u8] = scratch;
    let mut epc = [0u8; 12];
    buf.copy_to_slice(&mut epc);
    Ok(Some(TagReport {
        epc: Epc96::from_bytes(epc),
        tag: TagId(buf.get_u64()),
        time: f64::from_bits(buf.get_u64()),
        phase: f64::from_bits(buf.get_u64()),
        rss_dbm: f64::from_bits(buf.get_u64()),
        doppler_hz: f64::from_bits(buf.get_u64()),
        antenna_port: buf.get_u16(),
        channel_index: buf.get_u16(),
    }))
}

/// Writes a complete trace in the given framing.
pub fn write_trace<W: Write>(
    writer: &mut W,
    format: TraceFormat,
    reports: &[TagReport],
) -> Result<(), TraceError> {
    match format {
        TraceFormat::JsonLines => {
            for r in reports {
                writer.write_all(encode_json_line(r).as_bytes())?;
                writer.write_all(b"\n")?;
            }
        }
        TraceFormat::Binary => {
            writer.write_all(&BINARY_MAGIC)?;
            for r in reports {
                writer.write_all(&encode_binary_record(r))?;
            }
        }
    }
    Ok(())
}

/// Writes a complete trace file in the given framing.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    format: TraceFormat,
    reports: &[TagReport],
) -> Result<(), TraceError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_trace(&mut writer, format, reports)?;
    writer.flush()?;
    Ok(())
}

/// Detects the framing from the first byte of a stream: `{` opens a JSON
/// line, `R` opens the binary magic.
pub fn detect_format(first_byte: u8) -> Result<TraceFormat, TraceError> {
    match first_byte {
        b'{' => Ok(TraceFormat::JsonLines),
        b'R' => Ok(TraceFormat::Binary),
        other => Err(TraceError::Malformed(format!(
            "unrecognized first byte 0x{other:02x} (neither JSON-lines nor binary trace)"
        ))),
    }
}

/// Reads a complete trace from a buffered stream, autodetecting the
/// framing.
pub fn read_trace<R: BufRead>(reader: &mut R) -> Result<Vec<TagReport>, TraceError> {
    let first = reader.fill_buf()?;
    if first.is_empty() {
        return Ok(Vec::new());
    }
    match detect_format(first[0])? {
        TraceFormat::JsonLines => {
            let mut reports = Vec::new();
            for (i, line) in reader.lines().enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                reports.push(decode_json_line(&line, i + 1)?);
            }
            Ok(reports)
        }
        TraceFormat::Binary => {
            let mut magic = [0u8; 4];
            reader.read_exact(&mut magic)?;
            if magic != BINARY_MAGIC {
                return Err(TraceError::Malformed(format!("bad magic {magic:02x?}")));
            }
            let mut reports = Vec::new();
            while let Some(r) = read_binary_record(reader)? {
                reports.push(r);
            }
            Ok(reports)
        }
    }
}

/// Reads a complete trace file, autodetecting the framing.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Vec<TagReport>, TraceError> {
    read_trace(&mut BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_reports() -> Vec<TagReport> {
        (0..7)
            .map(|i| TagReport {
                epc: Epc96::for_tag(TagId(i)),
                tag: TagId(i),
                time: 0.1 + i as f64 * 0.0123456789,
                phase: (i as f64 * 1.7).rem_euclid(std::f64::consts::TAU),
                rss_dbm: -45.5 + i as f64 * 0.5,
                doppler_hz: -0.75 + i as f64 * 0.3,
                antenna_port: 1 + (i % 4) as u16,
                channel_index: (i % 50) as u16,
            })
            .collect()
    }

    #[test]
    fn json_lines_round_trip_is_bit_exact() {
        let reports = sample_reports();
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::JsonLines, &reports).unwrap();
        let decoded = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded.len(), reports.len());
        for (orig, dec) in reports.iter().zip(&decoded) {
            assert_eq!(orig, dec);
            assert_eq!(orig.time.to_bits(), dec.time.to_bits());
            assert_eq!(orig.phase.to_bits(), dec.phase.to_bits());
        }
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let reports = sample_reports();
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &reports).unwrap();
        assert_eq!(&buf[..4], &BINARY_MAGIC);
        assert_eq!(buf.len(), 4 + reports.len() * (4 + BINARY_RECORD_LEN));
        let decoded = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, reports);
    }

    #[test]
    fn format_is_autodetected() {
        let reports = sample_reports();
        for format in [TraceFormat::JsonLines, TraceFormat::Binary] {
            let mut buf = Vec::new();
            write_trace(&mut buf, format, &reports).unwrap();
            assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), reports);
        }
    }

    #[test]
    fn empty_trace_reads_empty() {
        assert!(read_trace(&mut (&[] as &[u8])).unwrap().is_empty());
    }

    #[test]
    fn garbage_first_byte_rejected() {
        let mut data: &[u8] = b"\x00\x01\x02";
        assert!(matches!(
            read_trace(&mut data),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn read_binary_record_into_reuses_scratch() {
        let reports = sample_reports();
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &reports).unwrap();
        let mut reader = &buf[4..]; // skip magic
        let mut scratch = Vec::new();
        let mut decoded = Vec::new();
        while let Some(r) = read_binary_record_into(&mut reader, &mut scratch).unwrap() {
            decoded.push(r);
            assert_eq!(scratch.len(), BINARY_RECORD_LEN);
        }
        assert_eq!(decoded, reports);
        assert!(scratch.capacity() >= BINARY_RECORD_LEN);
    }

    #[test]
    fn truncated_binary_record_rejected() {
        let reports = sample_reports();
        let mut buf = Vec::new();
        write_trace(&mut buf, TraceFormat::Binary, &reports).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn malformed_json_line_reports_line_number() {
        let mut data: &[u8] = b"{\"epc\":\"00\"}\n";
        match read_trace(&mut data) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn field_order_does_not_matter() {
        let r = TagReport::synthetic(TagId(3), 1.5, 2.0, -44.0);
        let line = encode_json_line(&r);
        // Reverse the field order by hand.
        let body = line
            .trim_start_matches('{')
            .trim_end_matches('}')
            .split(',')
            .rev()
            .collect::<Vec<_>>()
            .join(",");
        let reordered = format!("{{{body}}}");
        assert_eq!(decode_json_line(&reordered, 1).unwrap(), r);
    }

    #[test]
    fn extreme_floats_survive_json() {
        let mut r = TagReport::synthetic(TagId(1), 0.1 + 0.2, 1e-15, -45.0);
        r.doppler_hz = -0.0;
        let line = encode_json_line(&r);
        let dec = decode_json_line(&line, 1).unwrap();
        assert_eq!(dec.time.to_bits(), r.time.to_bits());
        assert_eq!(dec.phase.to_bits(), r.phase.to_bits());
        assert_eq!(dec.doppler_hz.to_bits(), r.doppler_hz.to_bits());
    }
}
