//! The reader facade: runs Gen2 inventory over a simulated scene and emits
//! the tag-report stream RFIPad consumes.
//!
//! This is the simulator's stand-in for an Impinj Speedway R420 driven
//! through the Octane SDK: configure link profile, initial Q, and search
//! mode; point it at an [`rf_sim::Scene`]; get back timestamped
//! `(EPC, phase, RSS, Doppler)` reads whose cadence follows the real MAC
//! (collisions, empties, Q adaptation — and therefore uneven per-tag
//! sampling).

use crate::inventory::{Inventory, InventoryStats, SearchMode};
use crate::link::LinkParams;
use crate::report::{TagReport, FIXED_CARRIER_CHANNEL};
use rand::Rng;
use rf_sim::scene::Scene;
use rf_sim::tags::TagId;
use rf_sim::targets::MovingTarget;
use serde::{Deserialize, Serialize};

/// Reader configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderConfig {
    /// Physical-layer profile.
    pub link: LinkParams,
    /// Initial Q exponent for inventory rounds (2^Q slots).
    pub initial_q: u8,
    /// Session search mode.
    pub search: SearchMode,
    /// Antenna port stamped on every report.
    pub antenna_port: u16,
    /// How often (seconds of simulated time) the powered-tag set is
    /// re-evaluated; readability changes on hand-motion time scales
    /// (~10 ms), far slower than slot time (~1 ms).
    pub power_check_interval_s: f64,
}

impl Default for ReaderConfig {
    fn default() -> Self {
        Self {
            link: LinkParams::dense_reader_m4(),
            initial_q: 5,
            search: SearchMode::DualTarget,
            antenna_port: 1,
            power_check_interval_s: 5e-3,
        }
    }
}

/// The result of a reader run: the report stream plus MAC statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReaderRun {
    /// All tag reports in time order.
    pub events: Vec<TagReport>,
    /// Inventory statistics (rounds, collisions, efficiency…).
    pub stats: InventoryStats,
}

impl ReaderRun {
    /// Reads per second across all tags.
    pub fn read_rate_hz(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        self.events.len() as f64 / duration_s
    }

    /// The reports for one tag, in time order.
    pub fn events_for(&self, tag: TagId) -> Vec<&TagReport> {
        self.events.iter().filter(|e| e.tag == tag).collect()
    }
}

/// A simulated EPC C1G2 reader.
#[derive(Debug, Clone)]
pub struct Gen2Reader {
    config: ReaderConfig,
}

impl Gen2Reader {
    /// Creates a reader with the given configuration.
    pub fn new(config: ReaderConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ReaderConfig {
        &self.config
    }

    /// Runs continuous inventory over `scene` from `start` for `duration`
    /// simulated seconds, with the given moving targets present, and returns
    /// the report stream.
    pub fn run<R: Rng + ?Sized>(
        &self,
        scene: &Scene,
        targets: &[&dyn MovingTarget],
        start: f64,
        duration: f64,
        rng: &mut R,
    ) -> ReaderRun {
        let mut inventory = Inventory::new(
            self.config.link,
            self.config.initial_q,
            self.config.search,
            start,
        );
        let mut events: Vec<TagReport> = Vec::new();

        // The powered set changes on hand-motion time scales; cache it and
        // refresh on the configured interval instead of per slot.
        let mut cache_time = f64::NEG_INFINITY;
        let mut cached: Vec<TagId> = Vec::new();
        let interval = self.config.power_check_interval_s;

        // The inventory callback cannot carry the rng (already borrowed), so
        // pre-draw observation noise seeds per read via a child closure that
        // defers observation until after the run? Simpler: collect read
        // instants first, then observe. Read ordering is deterministic given
        // the rng, and observation noise is drawn afterwards from the same
        // rng — statistically equivalent.
        let mut read_instants: Vec<(TagId, f64)> = Vec::new();
        {
            let powered = |t: f64| -> Vec<TagId> {
                scene
                    .tags()
                    .iter()
                    .filter(|tag| scene.is_readable(tag, t, targets))
                    .map(|tag| tag.id)
                    .collect()
            };
            let mut powered_cached = |t: f64| -> Vec<TagId> {
                if t - cache_time >= interval {
                    cache_time = t;
                    cached = powered(t);
                }
                cached.clone()
            };
            inventory.run(start + duration, rng, &mut powered_cached, |id, t| {
                read_instants.push((id, t));
            });
        }

        let hopping = scene.config().hopping.as_ref();
        for (id, t) in read_instants {
            if let Some(observation) = scene.observe(id, t, targets, rng) {
                // LLRP ChannelIndex is 1-based under a hopping plan; 0 marks
                // a fixed carrier.
                let channel_index = hopping
                    .map(|plan| plan.index_at(t) as u16 + 1)
                    .unwrap_or(FIXED_CARRIER_CHANNEL);
                events.push(TagReport::from_observation(
                    &observation,
                    self.config.antenna_port,
                    channel_index,
                ));
            }
        }

        let stats = *inventory.stats();
        // Counter updates are batched per run, off the per-slot hot path.
        let metrics = crate::telemetry::reader_metrics();
        metrics.reads.add(events.len() as u64);
        metrics.rounds.add(stats.rounds);
        metrics.slots_empty.add(stats.empties);
        metrics.slots_collision.add(stats.collisions);
        metrics.slots_success.add(stats.successes);
        obs::debug!(
            "reader run complete";
            reads = events.len(),
            rounds = stats.rounds,
            efficiency = format!("{:.3}", stats.efficiency())
        );

        ReaderRun { events, stats }
    }
}

impl Default for Gen2Reader {
    fn default() -> Self {
        Self::new(ReaderConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rf_sim::antenna::ReaderAntenna;
    use rf_sim::environment::Environment;
    use rf_sim::geometry::Vec3;
    use rf_sim::scene::SceneConfig;
    use rf_sim::tags::{TagArray, TagModel};
    use rf_sim::targets::StaticTarget;
    use rf_sim::units::Dbi;

    fn scene() -> Scene {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| {
            (id.0 as f64 * 2.39) % std::f64::consts::TAU
        });
        let center = array.center();
        let antenna = ReaderAntenna::new(
            Vec3::new(center.x, center.y, -0.32),
            Vec3::new(0.0, 0.0, 1.0),
            Dbi(8.0),
        );
        Scene::new(
            antenna,
            array.tags().to_vec(),
            Environment::office_location(1),
            SceneConfig::default(),
        )
    }

    #[test]
    fn run_produces_reads_for_every_tag() {
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(10);
        let run = reader.run(&scene(), &[], 0.0, 2.0, &mut rng);
        let mut seen: Vec<TagId> = run.events.iter().map(|e| e.tag).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 25, "all 25 tags reported");
    }

    #[test]
    fn reports_are_time_ordered_and_stamped() {
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(11);
        let run = reader.run(&scene(), &[], 0.5, 1.0, &mut rng);
        assert!(!run.events.is_empty());
        for pair in run.events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for e in &run.events {
            assert!(e.time >= 0.5);
            assert_eq!(e.antenna_port, 1);
            assert_eq!(e.epc.to_tag(), Some(e.tag));
            assert_eq!(e.channel_index, FIXED_CARRIER_CHANNEL);
        }
    }

    #[test]
    fn read_rate_plausible_for_25_tags() {
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(12);
        let run = reader.run(&scene(), &[], 0.0, 3.0, &mut rng);
        let rate = run.read_rate_hz(3.0);
        // M=4 with 25 tags: expect on the order of 100–400 reads/s total.
        assert!(rate > 60.0 && rate < 500.0, "rate {rate}");
    }

    #[test]
    fn per_tag_sampling_is_uneven() {
        // The MAC serializes reads, so per-tag inter-read gaps vary — the
        // unevenness RFIPad's framing is designed around.
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(13);
        let run = reader.run(&scene(), &[], 0.0, 2.0, &mut rng);
        let events = run.events_for(TagId(12));
        assert!(events.len() > 5);
        let gaps: Vec<f64> = events.windows(2).map(|w| w[1].time - w[0].time).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1.5 * mean, "gaps too uniform: mean {mean}, max {max}");
    }

    #[test]
    fn hand_presence_still_allows_inventory() {
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(14);
        let hand = StaticTarget::new(Vec3::new(0.12, -0.12, 0.03), 0.02);
        let run = reader.run(&scene(), &[&hand], 0.0, 1.0, &mut rng);
        assert!(
            run.events.len() > 50,
            "reads with hand: {}",
            run.events.len()
        );
    }

    #[test]
    fn faster_link_reads_more() {
        let mut rng = StdRng::seed_from_u64(15);
        let slow = Gen2Reader::new(ReaderConfig {
            link: LinkParams::dense_reader_m8(),
            ..ReaderConfig::default()
        })
        .run(&scene(), &[], 0.0, 1.0, &mut rng);
        let fast = Gen2Reader::new(ReaderConfig {
            link: LinkParams::fast(),
            ..ReaderConfig::default()
        })
        .run(&scene(), &[], 0.0, 1.0, &mut rng);
        assert!(
            fast.events.len() > 2 * slow.events.len(),
            "fast {} vs slow {}",
            fast.events.len(),
            slow.events.len()
        );
    }

    #[test]
    fn hopping_scene_stamps_llrp_channel_indices() {
        use rf_sim::scene::HoppingPlan;
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| {
            (id.0 as f64 * 2.39) % std::f64::consts::TAU
        });
        let center = array.center();
        let antenna = ReaderAntenna::new(
            Vec3::new(center.x, center.y, -0.32),
            Vec3::new(0.0, 0.0, 1.0),
            Dbi(8.0),
        );
        let plan = HoppingPlan::fcc();
        let scene = Scene::new(
            antenna,
            array.tags().to_vec(),
            Environment::office_location(1),
            SceneConfig {
                hopping: Some(plan.clone()),
                ..SceneConfig::default()
            },
        );
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(17);
        let run = reader.run(&scene, &[], 0.0, 1.0, &mut rng);
        assert!(!run.events.is_empty());
        for e in &run.events {
            assert!(e.channel_index >= 1, "hopping indices are 1-based");
            assert_eq!(e.channel_index as usize, plan.index_at(e.time) + 1);
        }
    }

    #[test]
    fn stats_accumulate() {
        let reader = Gen2Reader::default();
        let mut rng = StdRng::seed_from_u64(16);
        let run = reader.run(&scene(), &[], 0.0, 1.0, &mut rng);
        assert!(run.stats.rounds > 0);
        assert_eq!(
            run.stats.slots,
            run.stats.empties + run.stats.collisions + run.stats.successes
        );
    }
}
