//! Gen2 air-interface link timing.
//!
//! The inventory rate — and therefore how densely RFIPad samples each tag —
//! is set by the physical-layer timing: the reader-to-tag Tari, the
//! backscatter link frequency (BLF), and the tag-to-reader Miller mode. The
//! paper's "low throughput / prefers slow motions" limitation (§VI) is a
//! direct consequence of these numbers, so the simulator models them
//! explicitly.

use serde::{Deserialize, Serialize};

/// Tag-to-reader modulation: FM0 baseband or Miller-modulated subcarrier.
/// Higher Miller factors are more robust but proportionally slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagEncoding {
    /// FM0 baseband: 1 symbol per bit — fastest, least robust.
    Fm0,
    /// Miller subcarrier, 2 cycles per symbol.
    Miller2,
    /// Miller subcarrier, 4 cycles per symbol (Impinj "Dense Reader M=4").
    Miller4,
    /// Miller subcarrier, 8 cycles per symbol — slowest, most robust.
    Miller8,
}

impl TagEncoding {
    /// Subcarrier cycles per data bit.
    pub fn cycles_per_bit(self) -> f64 {
        match self {
            TagEncoding::Fm0 => 1.0,
            TagEncoding::Miller2 => 2.0,
            TagEncoding::Miller4 => 4.0,
            TagEncoding::Miller8 => 8.0,
        }
    }

    /// Preamble length in symbol periods (TRext=1 pilot tone included).
    pub fn preamble_bits(self) -> f64 {
        match self {
            TagEncoding::Fm0 => 18.0,
            _ => 22.0,
        }
    }
}

/// Physical-layer parameters of one reader session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Reference interval Tari in seconds (6.25, 12.5 or 25 µs).
    pub tari_s: f64,
    /// Backscatter link frequency in Hz (typ. 250 kHz).
    pub blf_hz: f64,
    /// Tag-to-reader encoding.
    pub encoding: TagEncoding,
}

impl LinkParams {
    /// Impinj "Mode 1000"-style fast profile: FM0 at 640 kHz (max-throughput
    /// autoset profile).
    pub fn fast() -> Self {
        Self {
            tari_s: 6.25e-6,
            blf_hz: 640e3,
            encoding: TagEncoding::Fm0,
        }
    }

    /// The balanced profile typical of an Impinj Speedway default
    /// (Miller-4 at 250 kHz) — what the paper's prototype would run.
    pub fn dense_reader_m4() -> Self {
        Self {
            tari_s: 12.5e-6,
            blf_hz: 250e3,
            encoding: TagEncoding::Miller4,
        }
    }

    /// Max-robustness profile: Miller-8 at 250 kHz.
    pub fn dense_reader_m8() -> Self {
        Self {
            tari_s: 25e-6,
            blf_hz: 250e3,
            encoding: TagEncoding::Miller8,
        }
    }

    /// Mean duration of one reader→tag data bit: data-0 is one Tari, data-1
    /// is 1.5–2 Tari; PIE averages ≈ 1.5 Tari for random data.
    pub fn reader_bit_s(&self) -> f64 {
        1.5 * self.tari_s
    }

    /// Duration of one tag→reader data bit.
    pub fn tag_bit_s(&self) -> f64 {
        self.encoding.cycles_per_bit() / self.blf_hz
    }

    /// T1: reader-command end to tag-reply start, per the Gen2 spec
    /// `max(RTcal, 10/BLF)`; RTcal ≈ 2.75 · Tari.
    pub fn t1_s(&self) -> f64 {
        (2.75 * self.tari_s).max(10.0 / self.blf_hz)
    }

    /// T2: tag-reply end to next reader command (spec: 3–20 / BLF).
    pub fn t2_s(&self) -> f64 {
        8.0 / self.blf_hz
    }

    /// T3: how long the reader waits before declaring a slot empty.
    pub fn t3_s(&self) -> f64 {
        self.t1_s() + 6.0 / self.blf_hz
    }

    /// Duration of a tag's RN16 reply (preamble + 16 bits + end).
    pub fn rn16_s(&self) -> f64 {
        (self.encoding.preamble_bits() + 17.0) * self.tag_bit_s()
    }

    /// Duration of a tag's `PC + EPC-96 + CRC16` reply.
    pub fn epc_reply_s(&self) -> f64 {
        (self.encoding.preamble_bits() + 128.0 + 1.0) * self.tag_bit_s()
    }

    /// Duration of a Query command (22 bits + frame-sync preamble).
    pub fn query_s(&self) -> f64 {
        22.0 * self.reader_bit_s() + 12.5 * self.tari_s
    }

    /// Duration of a QueryRep command (4 bits + frame sync).
    pub fn query_rep_s(&self) -> f64 {
        4.0 * self.reader_bit_s() + 6.0 * self.tari_s
    }

    /// Duration of an ACK command (18 bits + frame sync).
    pub fn ack_s(&self) -> f64 {
        18.0 * self.reader_bit_s() + 6.0 * self.tari_s
    }

    /// Wall time consumed by an empty slot.
    pub fn empty_slot_s(&self) -> f64 {
        self.query_rep_s() + self.t3_s()
    }

    /// Wall time consumed by a collision slot (RN16s overlap, no ACK).
    pub fn collision_slot_s(&self) -> f64 {
        self.query_rep_s() + self.t1_s() + self.rn16_s() + self.t2_s()
    }

    /// Wall time consumed by a successful singulation:
    /// QueryRep → RN16 → ACK → EPC.
    pub fn success_slot_s(&self) -> f64 {
        self.query_rep_s()
            + self.t1_s()
            + self.rn16_s()
            + self.t2_s()
            + self.ack_s()
            + self.t1_s()
            + self.epc_reply_s()
            + self.t2_s()
    }

    /// Upper bound on reads per second if every slot were a success.
    pub fn max_read_rate_hz(&self) -> f64 {
        1.0 / self.success_slot_s()
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        Self::dense_reader_m4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_duration_ordering() {
        for p in [
            LinkParams::fast(),
            LinkParams::dense_reader_m4(),
            LinkParams::dense_reader_m8(),
        ] {
            assert!(p.empty_slot_s() < p.collision_slot_s());
            assert!(p.collision_slot_s() < p.success_slot_s());
        }
    }

    #[test]
    fn m4_read_rate_plausible() {
        // Real Speedway readers in M=4 singulate roughly 150–400 tags/s.
        let rate = LinkParams::dense_reader_m4().max_read_rate_hz();
        assert!(rate > 150.0 && rate < 600.0, "rate {rate}");
    }

    #[test]
    fn fm0_faster_than_miller8() {
        let fast = LinkParams::fast().max_read_rate_hz();
        let slow = LinkParams::dense_reader_m8().max_read_rate_hz();
        assert!(fast > 2.0 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn t1_respects_spec_lower_bound() {
        let p = LinkParams::dense_reader_m4();
        assert!(p.t1_s() >= 10.0 / p.blf_hz);
        assert!(p.t1_s() >= 2.75 * p.tari_s);
    }

    #[test]
    fn higher_miller_slower_tag_bits() {
        let m4 = LinkParams::dense_reader_m4();
        let m8 = LinkParams {
            encoding: TagEncoding::Miller8,
            ..m4
        };
        assert!((m8.tag_bit_s() / m4.tag_bit_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn epc_reply_longer_than_rn16() {
        // 128 payload bits vs 16: with preamble overhead the ratio is ≈ 3.9.
        let p = LinkParams::default();
        assert!(p.epc_reply_s() > 3.0 * p.rn16_s());
    }

    #[test]
    fn durations_are_microseconds_scale() {
        let p = LinkParams::dense_reader_m4();
        assert!(p.query_s() > 1e-5 && p.query_s() < 1e-3);
        assert!(p.success_slot_s() > 1e-4 && p.success_slot_s() < 1e-2);
    }
}
