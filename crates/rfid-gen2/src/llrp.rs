//! A compact LLRP-style wire format for tag reports.
//!
//! The paper's software stack talks to the Speedway reader over LLRP (EPC
//! "Low Level Reader Protocol") via a modified Octane SDK that enables phase
//! reporting. This module implements the part of that boundary the RFIPad
//! host software actually exercises: framing `RO_ACCESS_REPORT` messages
//! that carry per-read EPC, antenna, RSSI, phase, Doppler, and timestamp —
//! so downstream code can consume byte streams exactly as a real deployment
//! would.
//!
//! Encodings follow LLRP conventions (big-endian, versioned message header)
//! but the parameter layout is simplified to a fixed record.

use crate::epc::Epc96;
use crate::report::TagReport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// LLRP protocol version carried in the header (LLRP 1.1).
const LLRP_VERSION: u8 = 2;

/// Message type for reader → client tag reports.
pub const MSG_RO_ACCESS_REPORT: u16 = 61;

/// Message type for client → reader keepalive acknowledgements (used in
/// tests of the framing layer).
pub const MSG_KEEPALIVE_ACK: u16 = 72;

/// Size in bytes of one encoded tag report record (EPC, antenna, RSSI,
/// phase, Doppler, channel index, timestamp).
const RECORD_LEN: usize = 12 + 2 + 2 + 2 + 2 + 2 + 8;

/// Errors produced when decoding LLRP frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than a complete header or payload.
    Truncated,
    /// The version bits do not match the supported LLRP version.
    BadVersion(u8),
    /// The payload length is not a whole number of records.
    BadLength(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated LLRP frame"),
            DecodeError::BadVersion(v) => write!(f, "unsupported LLRP version {v}"),
            DecodeError::BadLength(n) => write!(f, "payload length {n} is not a record multiple"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An LLRP message: type, id, and raw payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlrpMessage {
    /// Message type code.
    pub msg_type: u16,
    /// Client-assigned message id.
    pub msg_id: u32,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl LlrpMessage {
    /// Encodes the message with the LLRP 10-byte header
    /// (`rsvd/version/type : u16`, `length : u32`, `id : u32`).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(10 + self.payload.len());
        let ver_type = ((LLRP_VERSION as u16) << 10) | (self.msg_type & 0x3FF);
        buf.put_u16(ver_type);
        buf.put_u32(10 + self.payload.len() as u32);
        buf.put_u32(self.msg_id);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes one message from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the buffer does not hold a full
    /// message, and [`DecodeError::BadVersion`] on a version mismatch.
    pub fn decode(mut buf: &[u8]) -> Result<(LlrpMessage, usize), DecodeError> {
        if buf.len() < 10 {
            return Err(DecodeError::Truncated);
        }
        let ver_type = buf.get_u16();
        let version = (ver_type >> 10) as u8 & 0x7;
        if version != LLRP_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let msg_type = ver_type & 0x3FF;
        let length = buf.get_u32() as usize;
        let msg_id = buf.get_u32();
        if length < 10 || buf.len() < length - 10 {
            return Err(DecodeError::Truncated);
        }
        let payload = buf[..length - 10].to_vec();
        Ok((
            LlrpMessage {
                msg_type,
                msg_id,
                payload,
            },
            length,
        ))
    }
}

/// Encodes a batch of tag reads as one `RO_ACCESS_REPORT` message.
///
/// Per record: EPC-96 (12 B), antenna (u16), peak RSSI in centi-dBm (i16),
/// phase in 1/4096-turn units (u16), Doppler in 1/16 Hz (i16), hop-channel
/// index (u16), timestamp in microseconds (u64) — mirroring Impinj's
/// low-level-data report fields.
pub fn encode_report(events: &[TagReport], msg_id: u32) -> Bytes {
    let mut payload = BytesMut::with_capacity(events.len() * RECORD_LEN);
    for e in events {
        payload.put_slice(e.epc.as_bytes());
        payload.put_u16(e.antenna_port);
        let rssi_centi = (e.rss_dbm * 100.0).round().clamp(-32768.0, 32767.0) as i16;
        payload.put_i16(rssi_centi);
        let phase_units = ((e.phase / std::f64::consts::TAU) * 4096.0).round() as u16 % 4096;
        payload.put_u16(phase_units);
        let doppler_units = (e.doppler_hz * 16.0).round().clamp(-32768.0, 32767.0) as i16;
        payload.put_i16(doppler_units);
        payload.put_u16(e.channel_index);
        let micros = (e.time * 1e6).round().max(0.0) as u64;
        payload.put_u64(micros);
    }
    LlrpMessage {
        msg_type: MSG_RO_ACCESS_REPORT,
        msg_id,
        payload: payload.to_vec(),
    }
    .encode()
}

/// Decodes an `RO_ACCESS_REPORT` payload back into tag reads.
///
/// # Errors
///
/// Returns [`DecodeError::BadLength`] if the payload is not a whole number
/// of records.
pub fn decode_report(msg: &LlrpMessage) -> Result<Vec<TagReport>, DecodeError> {
    if !msg.payload.len().is_multiple_of(RECORD_LEN) {
        return Err(DecodeError::BadLength(msg.payload.len()));
    }
    let mut buf = msg.payload.as_slice();
    let mut events = Vec::with_capacity(msg.payload.len() / RECORD_LEN);
    while buf.has_remaining() {
        let mut epc = [0u8; 12];
        buf.copy_to_slice(&mut epc);
        let epc = Epc96::from_bytes(epc);
        let antenna_port = buf.get_u16();
        let rss_dbm = buf.get_i16() as f64 / 100.0;
        let phase = buf.get_u16() as f64 / 4096.0 * std::f64::consts::TAU;
        let doppler_hz = buf.get_i16() as f64 / 16.0;
        let channel_index = buf.get_u16();
        let time = buf.get_u64() as f64 / 1e6;
        let tag = epc.to_tag().unwrap_or(rf_sim::tags::TagId(u64::MAX));
        events.push(TagReport {
            epc,
            tag,
            time,
            phase,
            rss_dbm,
            doppler_hz,
            antenna_port,
            channel_index,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_sim::tags::TagId;

    fn sample_event(i: u64) -> TagReport {
        TagReport {
            epc: Epc96::for_tag(TagId(i)),
            tag: TagId(i),
            time: 1.5 + i as f64 * 0.001,
            phase: 3.217,
            rss_dbm: -41.5,
            doppler_hz: 0.75,
            antenna_port: 1,
            channel_index: (i % 50) as u16 + 1,
        }
    }

    #[test]
    fn message_encode_decode_round_trip() {
        let msg = LlrpMessage {
            msg_type: MSG_KEEPALIVE_ACK,
            msg_id: 42,
            payload: vec![1, 2, 3],
        };
        let bytes = msg.encode();
        let (decoded, consumed) = LlrpMessage::decode(&bytes).expect("decodes");
        assert_eq!(decoded, msg);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(LlrpMessage::decode(&[0; 5]), Err(DecodeError::Truncated));
    }

    #[test]
    fn truncated_payload_rejected() {
        let msg = LlrpMessage {
            msg_type: 1,
            msg_id: 1,
            payload: vec![0; 100],
        };
        let bytes = msg.encode();
        assert_eq!(
            LlrpMessage::decode(&bytes[..50]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn bad_version_rejected() {
        let msg = LlrpMessage {
            msg_type: 1,
            msg_id: 1,
            payload: vec![],
        };
        let mut bytes = msg.encode().to_vec();
        bytes[0] = 0xFF; // clobber the version bits
        assert!(matches!(
            LlrpMessage::decode(&bytes),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn report_round_trip_preserves_fields() {
        let events: Vec<TagReport> = (0..5).map(sample_event).collect();
        let bytes = encode_report(&events, 7);
        let (msg, _) = LlrpMessage::decode(&bytes).expect("decodes");
        assert_eq!(msg.msg_type, MSG_RO_ACCESS_REPORT);
        assert_eq!(msg.msg_id, 7);
        let decoded = decode_report(&msg).expect("payload valid");
        assert_eq!(decoded.len(), 5);
        for (orig, dec) in events.iter().zip(&decoded) {
            assert_eq!(dec.epc, orig.epc);
            assert_eq!(dec.tag, orig.tag);
            assert_eq!(dec.antenna_port, orig.antenna_port);
            assert_eq!(dec.channel_index, orig.channel_index);
            assert!((dec.rss_dbm - orig.rss_dbm).abs() < 0.01);
            // Phase survives to quantization resolution (2π/4096).
            assert!((dec.phase - orig.phase).abs() < 0.002);
            assert!((dec.doppler_hz - orig.doppler_hz).abs() < 0.07);
            assert!((dec.time - orig.time).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_report_is_valid() {
        let bytes = encode_report(&[], 1);
        let (msg, _) = LlrpMessage::decode(&bytes).expect("decodes");
        assert!(decode_report(&msg).expect("valid").is_empty());
    }

    #[test]
    fn garbage_payload_length_rejected() {
        let msg = LlrpMessage {
            msg_type: MSG_RO_ACCESS_REPORT,
            msg_id: 1,
            payload: vec![0; RECORD_LEN + 3],
        };
        assert!(matches!(
            decode_report(&msg),
            Err(DecodeError::BadLength(_))
        ));
    }

    #[test]
    fn multiple_messages_in_one_buffer() {
        let a = encode_report(&[sample_event(1)], 1);
        let b = encode_report(&[sample_event(2), sample_event(3)], 2);
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b);
        let (m1, used) = LlrpMessage::decode(&stream).expect("first");
        let (m2, _) = LlrpMessage::decode(&stream[used..]).expect("second");
        assert_eq!(decode_report(&m1).expect("ok").len(), 1);
        assert_eq!(decode_report(&m2).expect("ok").len(), 2);
    }
}
