//! The RFIPad ingest wire protocol: length-prefixed report-batch frames
//! with session multiplexing, plus the client codec.
//!
//! A deployment streams reader output to a recognition server over TCP
//! (the role LLRP plays between a Speedway reader and its host). This
//! module defines that boundary for `rfipad::serve`:
//!
//! - a 6-byte versioned handshake (`RFIW` + `u16` version), sent by the
//!   client and answered by the server with the negotiated version (the
//!   minimum of the two) before any frame;
//! - frames of `u32` big-endian payload length + payload, where the first
//!   payload byte is the frame type;
//! - client → server frames [`Frame::Open`], [`Frame::Batch`] (carrying
//!   the [`trace`](crate::trace) length-prefixed binary record encoding,
//!   bit-lossless), and [`Frame::Close`], each tagged with the session id
//!   it targets so one connection multiplexes many sessions;
//! - server → client responses [`Frame::Ack`], [`Frame::Shed`],
//!   [`Frame::Closed`], and [`Frame::Error`].
//!
//! The protocol is lock-step: every client frame gets exactly one
//! response. Backpressure needs no extra machinery — a server that blocks
//! on a full session queue simply delays its ACK, and a lossy server
//! reports what it evicted in a SHED. [`IngestClient`] wraps the exchange
//! for callers.
//!
//! Version 2 adds an **optional trace-context block** to OPEN and BATCH:
//! a presence byte followed (when present) by a 64-bit trace id and a
//! 64-bit parent span id, so a client can tie its batches into an
//! end-to-end trace. The block only exists on the wire when version 2 was
//! negotiated — a v1 peer's byte stream is bit-identical to before, and a
//! v2 encoder talking to a v1 server silently drops the context.
//!
//! Framing and handshake are transport-agnostic (`Read`/`Write`); only
//! [`IngestClient::connect`] assumes TCP.

use crate::report::{ReportBatch, TagReport};
use crate::trace::{encode_binary_record, read_binary_record_into, TraceError, BINARY_RECORD_LEN};
use bytes::BufMut;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Magic bytes opening the handshake in both directions.
pub const WIRE_MAGIC: [u8; 4] = *b"RFIW";

/// Newest protocol version this codec speaks (adds the optional
/// trace-context block on OPEN/BATCH).
pub const WIRE_VERSION: u16 = 2;

/// Oldest protocol version this codec still accepts.
pub const MIN_WIRE_VERSION: u16 = 1;

/// The version without trace context; its frames are bit-identical to the
/// original protocol.
pub const WIRE_VERSION_V1: u16 = 1;

/// Byte length of the handshake (magic + version).
pub const HANDSHAKE_LEN: usize = 6;

/// Default cap on one frame's payload length. Generous: a 1 MiB frame
/// holds ~18k reports, two orders of magnitude above the batch sizes the
/// engine wants.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Frame type byte: client opens a session.
pub const FRAME_OPEN: u8 = 0x01;
/// Frame type byte: client delivers a report batch to a session.
pub const FRAME_BATCH: u8 = 0x02;
/// Frame type byte: client closes a session.
pub const FRAME_CLOSE: u8 = 0x03;
/// Frame type byte: server accepted a frame in full.
pub const FRAME_ACK: u8 = 0x81;
/// Frame type byte: server accepted a batch but shed older reports.
pub const FRAME_SHED: u8 = 0x82;
/// Frame type byte: server closed a session.
pub const FRAME_CLOSED: u8 = 0x83;
/// Frame type byte: server reports an error.
pub const FRAME_ERROR: u8 = 0x7F;

/// [`Frame::Error`] code: handshake version not supported.
pub const ERR_UNSUPPORTED_VERSION: u16 = 1;
/// [`Frame::Error`] code: frame failed to decode.
pub const ERR_MALFORMED: u16 = 2;
/// [`Frame::Error`] code: frame targets a session this connection never
/// opened (or already closed).
pub const ERR_UNKNOWN_SESSION: u16 = 3;
/// [`Frame::Error`] code: OPEN names a session that is already open.
pub const ERR_SESSION_EXISTS: u16 = 4;
/// [`Frame::Error`] code: the engine rejected the operation.
pub const ERR_ENGINE: u16 = 5;
/// [`Frame::Error`] code: frame length exceeds the server's cap.
pub const ERR_TOO_LARGE: u16 = 6;

/// Errors surfaced by the wire codec and [`IngestClient`].
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The peer's handshake or frame violated the protocol.
    Malformed(String),
    /// The peer speaks a protocol version this codec does not.
    UnsupportedVersion(u16),
    /// A frame's payload length exceeds the configured cap.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The server answered with an error frame.
    Remote {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection died mid-exchange.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(msg) => write!(f, "malformed wire data: {msg}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Trace context a v2 client attaches to OPEN/BATCH frames: which
/// end-to-end trace the frame belongs to and the client-side span it
/// nests under. Plain ids here — `obs::trace` owns the typed view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// 64-bit trace id (0 is reserved and never generated).
    pub trace: u64,
    /// 64-bit parent span id.
    pub parent_span: u64,
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open an engine session under this id.
    Open {
        /// Client-chosen session id (scoped to the connection).
        session: String,
        /// Optional trace context; only on the wire under version ≥ 2.
        trace: Option<TraceContext>,
    },
    /// Client → server: reports for a session, in the lossless binary
    /// trace record encoding.
    Batch {
        /// Target session id.
        session: String,
        /// Client-assigned sequence number, echoed in the response.
        seq: u32,
        /// The reports.
        reports: ReportBatch,
        /// Optional trace context; only on the wire under version ≥ 2.
        trace: Option<TraceContext>,
    },
    /// Client → server: close a session and flush its pipeline.
    Close {
        /// Target session id.
        session: String,
    },
    /// Server → client: the frame was accepted in full.
    Ack {
        /// Session the response concerns.
        session: String,
        /// Sequence number of the batch (0 for OPEN).
        seq: u32,
        /// Reports enqueued by the acknowledged frame.
        accepted: u64,
    },
    /// Server → client: the batch was accepted, but making room evicted
    /// older queued reports (the engine's `DropOldest` policy).
    Shed {
        /// Session the response concerns.
        session: String,
        /// Sequence number of the batch.
        seq: u32,
        /// Reports enqueued by the acknowledged batch.
        accepted: u64,
        /// Older reports evicted to make room.
        dropped: u64,
    },
    /// Server → client: the session closed; its pipeline produced this
    /// many events in total.
    Closed {
        /// Session the response concerns.
        session: String,
        /// Lifetime event count of the closed session.
        events: u64,
    },
    /// Server → client: the request failed.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    /// The frame's type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Open { .. } => FRAME_OPEN,
            Frame::Batch { .. } => FRAME_BATCH,
            Frame::Close { .. } => FRAME_CLOSE,
            Frame::Ack { .. } => FRAME_ACK,
            Frame::Shed { .. } => FRAME_SHED,
            Frame::Closed { .. } => FRAME_CLOSED,
            Frame::Error { .. } => FRAME_ERROR,
        }
    }
}

/// The 6 handshake bytes announcing [`WIRE_VERSION`], the newest version
/// this codec speaks.
pub fn handshake_bytes() -> [u8; HANDSHAKE_LEN] {
    handshake_bytes_for(WIRE_VERSION)
}

/// The 6 handshake bytes announcing an explicit `version` — what a server
/// echoes after negotiation, and what a downlevel client sends.
pub fn handshake_bytes_for(version: u16) -> [u8; HANDSHAKE_LEN] {
    let mut hs = [0u8; HANDSHAKE_LEN];
    hs[..4].copy_from_slice(&WIRE_MAGIC);
    hs[4..].copy_from_slice(&version.to_be_bytes());
    hs
}

/// Validates a received handshake and returns the peer's version. Every
/// version in `MIN_WIRE_VERSION..=WIRE_VERSION` is accepted; the caller
/// negotiates by answering with `min(peer, WIRE_VERSION)`.
///
/// # Errors
///
/// [`WireError::Malformed`] on a magic mismatch,
/// [`WireError::UnsupportedVersion`] on a version this codec does not
/// speak.
pub fn check_handshake(hs: &[u8; HANDSHAKE_LEN]) -> Result<u16, WireError> {
    if hs[..4] != WIRE_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad handshake magic {:02x?}",
            &hs[..4]
        )));
    }
    let version = u16::from_be_bytes([hs[4], hs[5]]);
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    Ok(version)
}

fn put_session(buf: &mut Vec<u8>, session: &str) {
    debug_assert!(session.len() <= u16::MAX as usize);
    buf.put_u16(session.len() as u16);
    buf.put_slice(session.as_bytes());
}

fn put_trace(buf: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        Some(ctx) => {
            buf.put_u8(1);
            buf.put_u64(ctx.trace);
            buf.put_u64(ctx.parent_span);
        }
        None => buf.put_u8(0),
    }
}

/// Encodes one frame in the version-1 wire form (no trace block) — the
/// frames are bit-identical to the original protocol, and any trace
/// context on the frame is dropped.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_v(frame, WIRE_VERSION_V1)
}

/// Encodes one frame as length prefix + payload in the negotiated
/// `version`'s wire form, ready to write.
pub fn encode_frame_v(frame: &Frame, version: u16) -> Vec<u8> {
    let traced = version >= 2;
    let mut payload = Vec::with_capacity(64);
    payload.put_u8(frame.type_byte());
    match frame {
        Frame::Open { session, trace } => {
            put_session(&mut payload, session);
            if traced {
                put_trace(&mut payload, trace);
            }
        }
        Frame::Close { session } => put_session(&mut payload, session),
        Frame::Batch {
            session,
            seq,
            reports,
            trace,
        } => {
            put_session(&mut payload, session);
            payload.put_u32(*seq);
            payload.put_u32(reports.len() as u32);
            payload.reserve(reports.len() * (4 + BINARY_RECORD_LEN));
            for r in reports.iter() {
                payload.extend_from_slice(&encode_binary_record(&r));
            }
            if traced {
                put_trace(&mut payload, trace);
            }
        }
        Frame::Ack {
            session,
            seq,
            accepted,
        } => {
            put_session(&mut payload, session);
            payload.put_u32(*seq);
            payload.put_u64(*accepted);
        }
        Frame::Shed {
            session,
            seq,
            accepted,
            dropped,
        } => {
            put_session(&mut payload, session);
            payload.put_u32(*seq);
            payload.put_u64(*accepted);
            payload.put_u64(*dropped);
        }
        Frame::Closed { session, events } => {
            put_session(&mut payload, session);
            payload.put_u64(*events);
        }
        Frame::Error { code, message } => {
            payload.put_u16(*code);
            payload.put_u16(message.len().min(u16::MAX as usize) as u16);
            payload.put_slice(&message.as_bytes()[..message.len().min(u16::MAX as usize)]);
        }
    }
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.put_u32(payload.len() as u32);
    framed.extend_from_slice(&payload);
    framed
}

/// Checked cursor over a payload slice: every decode error is a typed
/// [`WireError::Malformed`], never a panic on truncated input.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed(format!(
                "payload truncated in {what} ({} of {n} bytes)",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn session(&mut self) -> Result<String, WireError> {
        let len = self.u16("session id length")? as usize;
        let bytes = self.take(len, "session id")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("session id is not UTF-8".into()))
    }

    fn trace(&mut self) -> Result<Option<TraceContext>, WireError> {
        match self.take(1, "trace flag")?[0] {
            0 => Ok(None),
            1 => Ok(Some(TraceContext {
                trace: self.u64("trace id")?,
                parent_span: self.u64("parent span id")?,
            })),
            other => Err(WireError::Malformed(format!(
                "bad trace flag 0x{other:02x}"
            ))),
        }
    }

    fn done(&self, what: &str) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after {what}",
                self.buf.len()
            )))
        }
    }
}

/// Decodes one frame payload in the version-1 wire form (no trace block).
///
/// # Errors
///
/// As for [`decode_payload_v`].
pub fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    decode_payload_v(payload, WIRE_VERSION_V1)
}

/// Decodes one frame payload (the bytes after the length prefix) in the
/// negotiated `version`'s wire form.
///
/// # Errors
///
/// [`WireError::Malformed`] on an unknown type byte, truncated fields,
/// a record that fails the binary trace decoder, or trailing bytes.
pub fn decode_payload_v(payload: &[u8], version: u16) -> Result<Frame, WireError> {
    let traced = version >= 2;
    let mut c = Cursor { buf: payload };
    let ty = c.take(1, "frame type")?[0];
    let frame = match ty {
        FRAME_OPEN => Frame::Open {
            session: c.session()?,
            trace: if traced { c.trace()? } else { None },
        },
        FRAME_BATCH => {
            let session = c.session()?;
            let seq = c.u32("batch seq")?;
            let count = c.u32("batch count")? as usize;
            let body = c.take(count * (4 + BINARY_RECORD_LEN), "batch records")?;
            let mut reader: &[u8] = body;
            let mut scratch = Vec::with_capacity(BINARY_RECORD_LEN);
            let mut reports = ReportBatch::with_capacity(count);
            for i in 0..count {
                match read_binary_record_into(&mut reader, &mut scratch) {
                    Ok(Some(r)) => reports.push(r),
                    Ok(None) => {
                        return Err(WireError::Malformed(format!(
                            "batch ended at record {i} of {count}"
                        )))
                    }
                    Err(TraceError::Malformed(msg)) => {
                        return Err(WireError::Malformed(format!("record {i}: {msg}")))
                    }
                    Err(e) => return Err(WireError::Malformed(format!("record {i}: {e}"))),
                }
            }
            Frame::Batch {
                session,
                seq,
                reports,
                trace: if traced { c.trace()? } else { None },
            }
        }
        FRAME_CLOSE => Frame::Close {
            session: c.session()?,
        },
        FRAME_ACK => Frame::Ack {
            session: c.session()?,
            seq: c.u32("ack seq")?,
            accepted: c.u64("ack accepted")?,
        },
        FRAME_SHED => Frame::Shed {
            session: c.session()?,
            seq: c.u32("shed seq")?,
            accepted: c.u64("shed accepted")?,
            dropped: c.u64("shed dropped")?,
        },
        FRAME_CLOSED => Frame::Closed {
            session: c.session()?,
            events: c.u64("closed events")?,
        },
        FRAME_ERROR => {
            let code = c.u16("error code")?;
            let len = c.u16("error message length")? as usize;
            let bytes = c.take(len, "error message")?;
            Frame::Error {
                code,
                message: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        other => {
            return Err(WireError::Malformed(format!(
                "unknown frame type 0x{other:02x}"
            )))
        }
    };
    c.done("frame")?;
    Ok(frame)
}

/// Writes one frame to a stream in the version-1 wire form.
///
/// # Errors
///
/// [`WireError::Io`] if the stream dies mid-write.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> Result<(), WireError> {
    write_frame_v(writer, frame, WIRE_VERSION_V1)
}

/// Writes one frame to a stream in the negotiated `version`'s wire form.
///
/// # Errors
///
/// [`WireError::Io`] if the stream dies mid-write.
pub fn write_frame_v<W: Write>(
    writer: &mut W,
    frame: &Frame,
    version: u16,
) -> Result<(), WireError> {
    writer.write_all(&encode_frame_v(frame, version))?;
    Ok(())
}

/// Reads one complete frame in the version-1 wire form.
///
/// # Errors
///
/// As for [`read_frame_v`].
pub fn read_frame<R: Read>(reader: &mut R, max_len: usize) -> Result<Option<Frame>, WireError> {
    read_frame_v(reader, max_len, WIRE_VERSION_V1)
}

/// Reads one complete frame from a blocking stream in the negotiated
/// `version`'s wire form. `Ok(None)` is a clean end of stream (EOF before
/// any prefix byte).
///
/// # Errors
///
/// [`WireError::Malformed`] on a mid-frame EOF or a payload that fails
/// [`decode_payload_v`]; [`WireError::FrameTooLarge`] when the declared
/// length exceeds `max_len`; [`WireError::Io`] on transport faults.
pub fn read_frame_v<R: Read>(
    reader: &mut R,
    max_len: usize,
    version: u16,
) -> Result<Option<Frame>, WireError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Malformed(format!(
                    "truncated frame length prefix ({filled} of 4 bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(WireError::Malformed(format!(
                    "truncated frame payload ({filled} of {len} bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    decode_payload_v(&payload, version).map(Some)
}

/// What a [`Frame::Ack`] or [`Frame::Shed`] response said about one
/// delivered batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delivery {
    /// Reports the server enqueued.
    pub accepted: u64,
    /// Older reports the server evicted to make room (0 under lossless
    /// backpressure).
    pub dropped: u64,
}

/// A synchronous client for the ingest protocol: handshake on connect,
/// then lock-step request/response.
///
/// ```no_run
/// # fn demo(batch: rfid_gen2::report::ReportBatch)
/// #     -> Result<(), rfid_gen2::wire::WireError> {
/// let mut client = rfid_gen2::wire::IngestClient::connect("127.0.0.1:7011")?;
/// client.open("pad-1")?;
/// let delivery = client.send_batch("pad-1", 1, batch)?;
/// assert_eq!(delivery.dropped, 0);
/// let events = client.close("pad-1")?;
/// # let _ = events; Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IngestClient<S: Read + Write = TcpStream> {
    stream: S,
    max_frame_len: usize,
    version: u16,
}

impl IngestClient<TcpStream> {
    /// Connects over TCP and completes the handshake.
    ///
    /// # Errors
    ///
    /// Connection faults as [`WireError::Io`]; a server that answers with
    /// the wrong magic or version as [`WireError::Malformed`] /
    /// [`WireError::UnsupportedVersion`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::from_stream(stream)
    }
}

impl<S: Read + Write> IngestClient<S> {
    /// Performs the client side of the handshake on an established
    /// bidirectional stream, announcing [`WIRE_VERSION`] and adopting
    /// whatever version the server negotiates down to.
    ///
    /// # Errors
    ///
    /// As for [`IngestClient::connect`].
    pub fn from_stream(stream: S) -> Result<Self, WireError> {
        Self::from_stream_versioned(stream, WIRE_VERSION)
    }

    /// Performs the handshake announcing an explicit `version` — how a
    /// test impersonates a downlevel (v1) client.
    ///
    /// # Errors
    ///
    /// As for [`IngestClient::connect`], plus [`WireError::Malformed`] if
    /// the server "negotiates" a version above the one announced.
    pub fn from_stream_versioned(mut stream: S, version: u16) -> Result<Self, WireError> {
        stream.write_all(&handshake_bytes_for(version))?;
        let mut hs = [0u8; HANDSHAKE_LEN];
        stream.read_exact(&mut hs).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Malformed("server closed during handshake".into())
            } else {
                e.into()
            }
        })?;
        let negotiated = check_handshake(&hs)?;
        if negotiated > version {
            return Err(WireError::Malformed(format!(
                "server negotiated version {negotiated} above the announced {version}"
            )));
        }
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            version: negotiated,
        })
    }

    /// The wire version negotiated during the handshake.
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// Sends one frame and reads the server's response, both in the
    /// negotiated version's wire form.
    ///
    /// # Errors
    ///
    /// Transport and codec faults as in [`write_frame_v`] /
    /// [`read_frame_v`]; a server that hangs up instead of responding is
    /// [`WireError::Malformed`].
    pub fn round_trip(&mut self, frame: &Frame) -> Result<Frame, WireError> {
        write_frame_v(&mut self.stream, frame, self.version)?;
        match read_frame_v(&mut self.stream, self.max_frame_len, self.version)? {
            Some(response) => Ok(response),
            None => Err(WireError::Malformed(
                "server closed instead of responding".into(),
            )),
        }
    }

    /// Opens a session on the server.
    ///
    /// # Errors
    ///
    /// A server-side rejection (duplicate id, engine fault) surfaces as
    /// [`WireError::Remote`].
    pub fn open(&mut self, session: &str) -> Result<(), WireError> {
        self.open_traced(session, None)
    }

    /// Opens a session carrying trace context (dropped on the wire if the
    /// negotiated version predates tracing).
    ///
    /// # Errors
    ///
    /// As for [`IngestClient::open`].
    pub fn open_traced(
        &mut self,
        session: &str,
        trace: Option<TraceContext>,
    ) -> Result<(), WireError> {
        let response = self.round_trip(&Frame::Open {
            session: session.into(),
            trace,
        })?;
        match response {
            Frame::Ack { .. } => Ok(()),
            other => Err(Self::unexpected("OPEN", other)),
        }
    }

    /// Delivers one batch and returns what the server did with it.
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] when the server answers with an error frame
    /// (unknown session, engine fault); transport faults as
    /// [`WireError::Io`].
    pub fn send_batch(
        &mut self,
        session: &str,
        seq: u32,
        reports: ReportBatch,
    ) -> Result<Delivery, WireError> {
        self.send_batch_traced(session, seq, reports, None)
    }

    /// Delivers one batch carrying trace context (dropped on the wire if
    /// the negotiated version predates tracing).
    ///
    /// # Errors
    ///
    /// As for [`IngestClient::send_batch`].
    pub fn send_batch_traced(
        &mut self,
        session: &str,
        seq: u32,
        reports: ReportBatch,
        trace: Option<TraceContext>,
    ) -> Result<Delivery, WireError> {
        let response = self.round_trip(&Frame::Batch {
            session: session.into(),
            seq,
            reports,
            trace,
        })?;
        match response {
            Frame::Ack {
                accepted, seq: s, ..
            } if s == seq => Ok(Delivery {
                accepted,
                dropped: 0,
            }),
            Frame::Shed {
                accepted,
                dropped,
                seq: s,
                ..
            } if s == seq => Ok(Delivery { accepted, dropped }),
            other => Err(Self::unexpected("BATCH", other)),
        }
    }

    /// Delivers a report slice in `batch_size` chunks, one BATCH frame
    /// per chunk, and returns the accumulated delivery.
    ///
    /// # Errors
    ///
    /// As for [`IngestClient::send_batch`].
    pub fn send_reports(
        &mut self,
        session: &str,
        reports: &[TagReport],
        batch_size: usize,
    ) -> Result<Delivery, WireError> {
        let mut total = Delivery::default();
        for (i, chunk) in reports.chunks(batch_size.max(1)).enumerate() {
            let delivery =
                self.send_batch(session, i as u32 + 1, chunk.iter().copied().collect())?;
            total.accepted += delivery.accepted;
            total.dropped += delivery.dropped;
        }
        Ok(total)
    }

    /// Closes a session, returning its lifetime event count.
    ///
    /// # Errors
    ///
    /// As for [`IngestClient::open`].
    pub fn close(&mut self, session: &str) -> Result<u64, WireError> {
        let response = self.round_trip(&Frame::Close {
            session: session.into(),
        })?;
        match response {
            Frame::Closed { events, .. } => Ok(events),
            other => Err(Self::unexpected("CLOSE", other)),
        }
    }

    fn unexpected(request: &str, response: Frame) -> WireError {
        match response {
            Frame::Error { code, message } => WireError::Remote { code, message },
            other => WireError::Malformed(format!(
                "unexpected response to {request}: frame type 0x{:02x}",
                other.type_byte()
            )),
        }
    }

    /// The underlying stream, for socket configuration.
    pub fn stream(&self) -> &S {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epc::Epc96;
    use rf_sim::tags::TagId;

    fn sample_report(i: u64) -> TagReport {
        TagReport {
            epc: Epc96::for_tag(TagId(i)),
            tag: TagId(i),
            time: 0.7 + i as f64 * 0.013,
            phase: 1.234 + i as f64,
            rss_dbm: -48.25,
            doppler_hz: -0.5,
            antenna_port: 1,
            channel_index: (i % 50) as u16,
        }
    }

    fn round_trip(frame: Frame) -> Frame {
        let bytes = encode_frame(&frame);
        let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4, "length prefix covers the payload");
        decode_payload(&bytes[4..]).expect("decodes")
    }

    #[test]
    fn handshake_round_trips_and_rejects() {
        let hs = handshake_bytes();
        assert_eq!(check_handshake(&hs).expect("valid"), WIRE_VERSION);
        // Every still-supported version is accepted for negotiation.
        for v in MIN_WIRE_VERSION..=WIRE_VERSION {
            assert_eq!(
                check_handshake(&handshake_bytes_for(v)).expect("supported"),
                v
            );
        }
        let mut bad_magic = hs;
        bad_magic[0] = b'X';
        assert!(matches!(
            check_handshake(&bad_magic),
            Err(WireError::Malformed(_))
        ));
        let mut bad_version = hs;
        bad_version[5] = 99;
        assert!(matches!(
            check_handshake(&bad_version),
            Err(WireError::UnsupportedVersion(99))
        ));
        assert!(matches!(
            check_handshake(&handshake_bytes_for(0)),
            Err(WireError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn v2_round_trips_trace_context_and_v1_stays_bit_identical() {
        let ctx = TraceContext {
            trace: 0x0123_4567_89ab_cdef,
            parent_span: 0xfeed_face_cafe_beef,
        };
        let open = Frame::Open {
            session: "pad-1".into(),
            trace: Some(ctx),
        };
        let batch = Frame::Batch {
            session: "pad-1".into(),
            seq: 9,
            reports: (0..3).map(sample_report).collect(),
            trace: Some(ctx),
        };
        for frame in [open.clone(), batch.clone()] {
            // v2 carries the context through.
            let bytes = encode_frame_v(&frame, 2);
            assert_eq!(decode_payload_v(&bytes[4..], 2).expect("decodes v2"), frame);
            // v1 encoding drops it and is bit-identical to encoding the
            // same frame without any context — old peers see old bytes.
            let mut untraced = frame.clone();
            match &mut untraced {
                Frame::Open { trace, .. } | Frame::Batch { trace, .. } => *trace = None,
                _ => unreachable!(),
            }
            assert_eq!(encode_frame_v(&frame, 1), encode_frame(&untraced));
            assert_eq!(
                decode_payload(&encode_frame_v(&frame, 1)[4..]).expect("decodes v1"),
                untraced
            );
        }
        // An absent context in v2 is one flag byte, still round-trips.
        let bare = Frame::Open {
            session: "pad-2".into(),
            trace: None,
        };
        let bytes = encode_frame_v(&bare, 2);
        assert_eq!(bytes.len(), encode_frame(&bare).len() + 1);
        assert_eq!(decode_payload_v(&bytes[4..], 2).expect("decodes"), bare);
        // A v2 payload fed to a v1 decoder has trailing bytes — typed error.
        assert!(matches!(
            decode_payload(&encode_frame_v(&open, 2)[4..]),
            Err(WireError::Malformed(_))
        ));
        // A bad flag byte is typed, not a panic.
        let mut bytes = encode_frame_v(&bare, 2)[4..].to_vec();
        *bytes.last_mut().expect("flag byte") = 7;
        assert!(matches!(
            decode_payload_v(&bytes, 2),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn every_frame_type_round_trips() {
        let reports: ReportBatch = (0..7).map(sample_report).collect();
        for frame in [
            Frame::Open {
                session: "pad-α".into(),
                trace: None,
            },
            Frame::Batch {
                session: "pad-1".into(),
                seq: 42,
                reports: reports.clone(),
                trace: None,
            },
            Frame::Close {
                session: String::new(),
            },
            Frame::Ack {
                session: "s".into(),
                seq: 7,
                accepted: 64,
            },
            Frame::Shed {
                session: "s".into(),
                seq: 8,
                accepted: 64,
                dropped: 12,
            },
            Frame::Closed {
                session: "s".into(),
                events: 3,
            },
            Frame::Error {
                code: ERR_UNKNOWN_SESSION,
                message: "no such session".into(),
            },
        ] {
            assert_eq!(round_trip(frame.clone()), frame);
        }
    }

    #[test]
    fn batch_payload_is_bit_lossless() {
        let reports: Vec<TagReport> = (0..5).map(sample_report).collect();
        let frame = Frame::Batch {
            session: "bits".into(),
            seq: 1,
            reports: reports.iter().copied().collect(),
            trace: None,
        };
        match round_trip(frame) {
            Frame::Batch {
                reports: decoded, ..
            } => {
                for (orig, dec) in reports.iter().zip(decoded.iter()) {
                    assert_eq!(orig.epc, dec.epc);
                    assert_eq!(orig.time.to_bits(), dec.time.to_bits());
                    assert_eq!(orig.phase.to_bits(), dec.phase.to_bits());
                    assert_eq!(orig.rss_dbm.to_bits(), dec.rss_dbm.to_bits());
                    assert_eq!(orig.doppler_hz.to_bits(), dec.doppler_hz.to_bits());
                }
            }
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_typed() {
        let bytes = encode_frame(&Frame::Batch {
            session: "t".into(),
            seq: 1,
            reports: (0..3).map(sample_report).collect(),
            trace: None,
        });
        // Every proper prefix of the payload fails with Malformed — never
        // panics, never decodes.
        for cut in 0..bytes.len() - 5 {
            assert!(
                matches!(
                    decode_payload(&bytes[4..4 + cut]),
                    Err(WireError::Malformed(_))
                ),
                "prefix of {cut} bytes must be malformed"
            );
        }
        let mut trailing = bytes[4..].to_vec();
        trailing.push(0);
        assert!(matches!(
            decode_payload(&trailing),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_payload(&[0x55]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn read_frame_paths() {
        let frame = Frame::Ack {
            session: "s".into(),
            seq: 1,
            accepted: 2,
        };
        let bytes = encode_frame(&frame);
        // Clean stream: one frame then clean EOF.
        let mut stream: &[u8] = &bytes;
        assert_eq!(
            read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("reads"),
            Some(frame)
        );
        assert_eq!(
            read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("clean eof"),
            None
        );
        // Mid-prefix and mid-payload EOFs are malformed.
        for cut in [2usize, bytes.len() - 3] {
            let mut stream: &[u8] = &bytes[..cut];
            assert!(matches!(
                read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN),
                Err(WireError::Malformed(_))
            ));
        }
        // An oversized declared length is rejected before allocation.
        let mut stream: &[u8] = &bytes;
        assert!(matches!(
            read_frame(&mut stream, 4),
            Err(WireError::FrameTooLarge { .. })
        ));
    }
}
