//! EPC-96 identifiers and the protocol-control word.

use crate::crc::crc16;
use rf_sim::tags::TagId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 96-bit Electronic Product Code, the identifier a Gen2 tag backscatters
/// during inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Epc96([u8; 12]);

impl Epc96 {
    /// Company-prefix bytes used for tags minted from a [`TagId`] in this
    /// workspace (arbitrary but stable).
    const WORKSPACE_PREFIX: [u8; 4] = [0x30, 0x08, 0x33, 0xB2];

    /// Creates an EPC from raw bytes.
    pub fn from_bytes(bytes: [u8; 12]) -> Self {
        Self(bytes)
    }

    /// The raw 12 bytes.
    pub fn as_bytes(&self) -> &[u8; 12] {
        &self.0
    }

    /// Mints the workspace EPC for a simulated tag: a fixed header plus the
    /// tag id in the low 64 bits.
    ///
    /// ```
    /// use rfid_gen2::epc::Epc96;
    /// use rf_sim::tags::TagId;
    /// let epc = Epc96::for_tag(TagId(7));
    /// assert_eq!(Epc96::to_tag(&epc), Some(TagId(7)));
    /// ```
    pub fn for_tag(id: TagId) -> Self {
        let mut bytes = [0u8; 12];
        bytes[..4].copy_from_slice(&Self::WORKSPACE_PREFIX);
        bytes[4..].copy_from_slice(&id.0.to_be_bytes());
        Self(bytes)
    }

    /// Recovers the [`TagId`] from a workspace-minted EPC, or `None` if the
    /// prefix does not match.
    pub fn to_tag(&self) -> Option<TagId> {
        if self.0[..4] != Self::WORKSPACE_PREFIX {
            return None;
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&self.0[4..]);
        Some(TagId(u64::from_be_bytes(id)))
    }

    /// The protocol-control word a tag transmits ahead of its EPC: EPC
    /// length in words (6 for EPC-96) in the top 5 bits.
    pub fn pc_word(&self) -> u16 {
        6 << 11
    }

    /// The CRC-16 a tag appends to `PC + EPC` in its reply.
    pub fn reply_crc(&self) -> u16 {
        let mut frame = Vec::with_capacity(14);
        frame.extend_from_slice(&self.pc_word().to_be_bytes());
        frame.extend_from_slice(&self.0);
        crc16(&frame)
    }
}

impl fmt::Display for Epc96 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 && i % 2 == 0 {
                write!(f, "-")?;
            }
            write!(f, "{b:02X}")?;
        }
        Ok(())
    }
}

impl From<TagId> for Epc96 {
    fn from(id: TagId) -> Self {
        Epc96::for_tag(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_recover_round_trip() {
        for i in [0u64, 1, 24, 1000, u64::MAX] {
            let epc = Epc96::for_tag(TagId(i));
            assert_eq!(epc.to_tag(), Some(TagId(i)));
        }
    }

    #[test]
    fn foreign_epc_does_not_decode() {
        let epc = Epc96::from_bytes([0xAA; 12]);
        assert_eq!(epc.to_tag(), None);
    }

    #[test]
    fn distinct_tags_distinct_epcs() {
        let a = Epc96::for_tag(TagId(1));
        let b = Epc96::for_tag(TagId(2));
        assert_ne!(a, b);
    }

    #[test]
    fn pc_word_encodes_six_words() {
        let epc = Epc96::for_tag(TagId(0));
        assert_eq!(epc.pc_word() >> 11, 6);
    }

    #[test]
    fn reply_crc_changes_with_epc() {
        let a = Epc96::for_tag(TagId(1)).reply_crc();
        let b = Epc96::for_tag(TagId(2)).reply_crc();
        assert_ne!(a, b);
    }

    #[test]
    fn display_format() {
        let epc = Epc96::for_tag(TagId(0x0102));
        let s = epc.to_string();
        assert!(s.starts_with("3008-33B2"));
        assert!(s.ends_with("0102"));
    }
}
