//! Kernel microbenchmark + hot-path allocation gate.
//!
//! Two probes, merged into `BENCH_pipeline.json` for `bench-check.sh`:
//!
//! * `kernel_bench` — per-kernel ns/element of the `sigproc::kernel`
//!   slice kernels against their naive allocating references
//!   (`sigproc::kernel::reference`). The reference timings include their
//!   allocation cost on purpose: that *is* the price the kernels remove.
//! * `hot_path_allocs` — feeds a quiet synthetic session through
//!   `OnlinePipeline` long enough to pass two retention-trim cycles (so
//!   every recycled buffer reached its high-water capacity), then counts
//!   heap allocations over a trim-free measurement window. Steady-state
//!   per-tick processing must allocate exactly zero times.
//!
//! Requires the `count-allocs` feature (a counting global allocator):
//! `cargo run --release -p bench --features count-allocs --bin kernel_bench`

use rfid_gen2::report::{TagId, TagReport};
use rfipad::{ArrayLayout, Calibration, OnlinePipeline, Recognizer, RfipadConfig};
use sigproc::kernel::{self, reference, Scratch};
use std::fmt::Write as _;
use std::time::Instant;

/// Elements per kernel input — a few times larger than the pipeline's
/// per-tick frame counts so per-call overhead amortizes away.
const ELEMS: usize = 4096;

/// Smoothing half-window used for the windowed kernels (the pipeline's
/// `window_frames / 2` is 2–4 for the default configs).
const HALF: usize = 4;

/// Median-of-ns-per-call over `rounds` timing rounds of `iters` calls.
fn time_ns_per_call(rounds: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Deterministic smooth-plus-wiggle test signal (no `rand` in bin deps).
fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37).sin() * 3.0 + (i as f64 * 0.011).cos())
        .collect()
}

/// Times one kernel/reference pair and appends its JSON fragment.
fn bench_pair(
    json: &mut String,
    name: &str,
    mut kernel_call: impl FnMut(),
    mut reference_call: impl FnMut(),
) {
    const ROUNDS: usize = 7;
    const ITERS: u32 = 400;
    // Warm both paths (page in code, size scratch buffers).
    kernel_call();
    reference_call();
    let kernel_ns = time_ns_per_call(ROUNDS, ITERS, &mut kernel_call) / ELEMS as f64;
    let reference_ns = time_ns_per_call(ROUNDS, ITERS, &mut reference_call) / ELEMS as f64;
    let speedup = reference_ns / kernel_ns;
    if !json.is_empty() {
        json.push_str(", ");
    }
    write!(
        json,
        "\"{name}\": {{ \"kernel_ns_per_elem\": {kernel_ns:.3}, \
         \"reference_ns_per_elem\": {reference_ns:.3}, \"speedup\": {speedup:.2} }}"
    )
    .expect("write to string");
    println!("{name:>16}: {kernel_ns:7.3} ns/elem vs {reference_ns:7.3} ref ({speedup:.2}x)");
}

fn run_kernel_bench() -> String {
    let data = signal(ELEMS);
    let times: Vec<f64> = (0..ELEMS).map(|i| i as f64 * 0.01).collect();
    let (lo, hi) = kernel::minmax(&data);
    let width = (hi - lo) / 256.0;

    let mut scratch = Scratch::new();
    let mut out = Vec::new();
    let mut bools = Vec::new();
    let mut hist = [0usize; 256];
    let mut out_times = Vec::new();
    let mut out_values = Vec::new();
    let mut kernels = String::new();

    bench_pair(
        &mut kernels,
        "sum_sumsq",
        || {
            std::hint::black_box(kernel::sum_sumsq(std::hint::black_box(&data)));
        },
        || {
            std::hint::black_box(reference::sum_sumsq(std::hint::black_box(&data)));
        },
    );
    bench_pair(
        &mut kernels,
        "minmax",
        || {
            std::hint::black_box(kernel::minmax(std::hint::black_box(&data)));
        },
        || {
            std::hint::black_box(reference::minmax(std::hint::black_box(&data)));
        },
    );
    bench_pair(
        &mut kernels,
        "moving_average",
        || {
            kernel::moving_average_into(std::hint::black_box(&data), HALF, &mut out);
            std::hint::black_box(out.len());
        },
        || {
            std::hint::black_box(reference::moving_average(std::hint::black_box(&data), HALF));
        },
    );
    bench_pair(
        &mut kernels,
        "windowed_std",
        || {
            kernel::windowed_std_into(std::hint::black_box(&data), HALF, &mut out);
            std::hint::black_box(out.len());
        },
        || {
            std::hint::black_box(reference::windowed_std(std::hint::black_box(&data), HALF));
        },
    );
    bench_pair(
        &mut kernels,
        "windowed_rms",
        || {
            kernel::windowed_rms_into(std::hint::black_box(&data), HALF, &mut out);
            std::hint::black_box(out.len());
        },
        || {
            std::hint::black_box(reference::windowed_rms(std::hint::black_box(&data), HALF));
        },
    );
    bench_pair(
        &mut kernels,
        "windowed_min",
        || {
            kernel::windowed_min_into(std::hint::black_box(&data), HALF, &mut out);
            std::hint::black_box(out.len());
        },
        || {
            std::hint::black_box(reference::windowed_min(std::hint::black_box(&data), HALF));
        },
    );
    bench_pair(
        &mut kernels,
        "median_filter",
        || {
            kernel::median_filter_into(std::hint::black_box(&data), 3, &mut scratch.sort, &mut out);
            std::hint::black_box(out.len());
        },
        || {
            std::hint::black_box(reference::median_filter(std::hint::black_box(&data), 3));
        },
    );
    bench_pair(
        &mut kernels,
        "resample_linear",
        || {
            kernel::resample_linear_into(
                std::hint::black_box(&times),
                std::hint::black_box(&data),
                0.004,
                &mut out_times,
                &mut out_values,
            );
            std::hint::black_box(out_values.len());
        },
        || {
            std::hint::black_box(reference::resample_linear(
                std::hint::black_box(&times),
                std::hint::black_box(&data),
                0.004,
            ));
        },
    );
    bench_pair(
        &mut kernels,
        "histogram",
        || {
            kernel::histogram_into(std::hint::black_box(&data), lo, width, &mut hist);
            std::hint::black_box(hist[0]);
        },
        || {
            std::hint::black_box(reference::histogram(
                std::hint::black_box(&data),
                lo,
                width,
                256,
            ));
        },
    );
    bench_pair(
        &mut kernels,
        "normalize_unit",
        || {
            kernel::normalize_unit_into(std::hint::black_box(&data), &mut out);
            std::hint::black_box(out.len());
        },
        || {
            std::hint::black_box(reference::normalize_unit(std::hint::black_box(&data)));
        },
    );
    bench_pair(
        &mut kernels,
        "binarize",
        || {
            kernel::binarize_into(std::hint::black_box(&data), 0.5, &mut bools);
            std::hint::black_box(bools.len());
        },
        || {
            std::hint::black_box(reference::binarize(std::hint::black_box(&data), 0.5));
        },
    );

    format!("{{ \"elems\": {ELEMS}, \"kernels\": {{ {kernels} }} }}")
}

/// A pipeline over a 1×3 pad with a synthetic static calibration — the
/// quiet stream never produces events, so the measurement window
/// exercises exactly the per-tick framing/segmentation hot path.
fn quiet_pipeline() -> OnlinePipeline {
    let layout = ArrayLayout::new(1, 3, (0..3).map(TagId).collect());
    let static_obs: Vec<TagReport> = (0..40)
        .flat_map(|j| {
            (0..3).map(move |i| {
                TagReport::synthetic(
                    TagId(i),
                    j as f64 * 0.05 + i as f64 * 0.01,
                    1.0 + i as f64,
                    -45.0,
                )
            })
        })
        .collect();
    let config = RfipadConfig::default();
    let cal = Calibration::from_observations(&layout, &static_obs, &config).expect("calibration");
    let recognizer = Recognizer::builder()
        .layout(layout)
        .calibration(cal)
        .config(config)
        .build()
        .expect("recognizer");
    OnlinePipeline::builder()
        .recognizer(recognizer)
        .build()
        .expect("pipeline")
}

/// Quiet reports arrive at 60/s (three tags, 50 ms steps). The retention
/// window is 30 s and a trim fires when the buffer spans 35 s, so trims
/// land near t = 35, 40, 45, … The warmup runs past two of them (every
/// recycled buffer reaches its high-water capacity); the measurement
/// window then sits strictly between trims.
const WARMUP_STEPS: u64 = 820; // 41.0 s simulated
const MEASURED_STEPS: u64 = 64; // 3.2 s more, ends before the ~45 s trim

fn push_step(pipeline: &mut OnlinePipeline, events: &mut Vec<rfipad::PipelineEvent>, j: u64) {
    for i in 0..3u64 {
        let t = j as f64 * 0.05 + i as f64 * 0.01;
        pipeline.push_into(
            TagReport::synthetic(TagId(i), t, 1.0 + i as f64, -45.0),
            events,
        );
    }
}

fn run_alloc_gate() -> String {
    let mut pipeline = quiet_pipeline();
    let mut events = Vec::new();
    for j in 0..WARMUP_STEPS {
        push_step(&mut pipeline, &mut events, j);
    }
    assert!(events.is_empty(), "quiet stream must stay quiet");
    let before = bench::count_allocs::alloc_count();
    for j in WARMUP_STEPS..WARMUP_STEPS + MEASURED_STEPS {
        push_step(&mut pipeline, &mut events, j);
    }
    let allocs = bench::count_allocs::alloc_count() - before;
    assert!(events.is_empty(), "quiet stream must stay quiet");
    let pushes = MEASURED_STEPS * 3;
    let per_push = allocs as f64 / pushes as f64;
    println!(
        "hot path: {allocs} allocations over {pushes} pushes ({per_push:.4}/push) \
         after {} warmup pushes",
        WARMUP_STEPS * 3
    );
    format!(
        "{{ \"allocs\": {allocs}, \"pushes\": {pushes}, \"allocs_per_push\": {per_push:.4}, \
         \"warmup_pushes\": {} }}",
        WARMUP_STEPS * 3
    )
}

fn main() {
    println!("kernel microbenchmarks ({ELEMS} elems, half-window {HALF}):");
    let kernel_entry = run_kernel_bench();
    println!("steady-state allocation gate:");
    let alloc_entry = run_alloc_gate();
    experiments::benchjson::merge_entry("kernel_bench", &kernel_entry)
        .expect("merge kernel_bench into BENCH_pipeline.json");
    experiments::benchjson::merge_entry("hot_path_allocs", &alloc_entry)
        .expect("merge hot_path_allocs into BENCH_pipeline.json");
    println!("merged kernel_bench + hot_path_allocs into BENCH_pipeline.json");
}
