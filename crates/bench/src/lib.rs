//! Benchmark-only crate: see the `benches/` directory for the Criterion
//! suites (DSP kernels, pipeline, Gen2 inventory, ablations, figure
//! machinery). The library target exists only to anchor the bench targets.
