//! Benchmark-only crate: see the `benches/` directory for the Criterion
//! suites (DSP kernels, pipeline, Gen2 inventory, ablations, figure
//! machinery). The library target exists only to anchor the bench targets
//! and, behind the `count-allocs` feature, to install the counting global
//! allocator the `kernel_bench` binary uses for its allocation gate.

/// Heap-allocation counting for the `hot_path_allocs` regression gate.
///
/// With the `count-allocs` feature, the crate installs a
/// `#[global_allocator]` that forwards to the system allocator while
/// counting every `alloc`, `alloc_zeroed`, and `realloc` call (frees are
/// not counted: the gate is about acquiring memory on the hot path).
/// [`alloc_count`](count_allocs::alloc_count) reads the running total, so
/// a harness can snapshot it around a code region and assert the delta.
#[cfg(feature = "count-allocs")]
pub mod count_allocs {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Forwards to [`System`] while counting allocation calls.
    pub struct CountingAllocator;

    // SAFETY: defers entirely to the system allocator; the counter is a
    // relaxed atomic with no allocation of its own.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Total allocation calls since process start (monotone).
    pub fn alloc_count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}
