//! One Criterion benchmark per evaluation axis: the end-to-end cost of the
//! trial machinery that regenerates the paper's tables and figures. Useful
//! for keeping the reproduction binaries fast enough to iterate on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::{AntennaPlacement, Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;
use std::hint::black_box;

fn bench_stroke_trial(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    c.bench_function("trial/stroke_vline", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(bench.run_stroke_trial(Stroke::new(StrokeShape::VLine), &user, seed))
        })
    });
}

fn bench_letter_trial(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    c.bench_function("trial/letter_H", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(bench.run_letter_trial('H', &user, seed))
        })
    });
}

fn bench_deployment_variants(c: &mut Criterion) {
    // Calibration cost per deployment variant (the per-figure setup cost).
    let mut group = c.benchmark_group("calibrate_deployment");
    for (name, spec) in [
        ("nlos_default", DeploymentSpec::default()),
        (
            "los",
            DeploymentSpec {
                placement: AntennaPlacement::Los,
                ..DeploymentSpec::default()
            },
        ),
        (
            "location4",
            DeploymentSpec {
                location: 4,
                ..DeploymentSpec::default()
            },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                black_box(Bench::calibrate(
                    Deployment::build(spec.clone(), 42),
                    RfipadConfig::default(),
                    1,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stroke_trial,
    bench_letter_trial,
    bench_deployment_variants
);
criterion_main!(benches);
