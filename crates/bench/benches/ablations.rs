//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! diversity suppression on/off, Otsu vs fixed threshold, segmentation
//! window size, and phase- vs RSS-based direction. Each ablation reports
//! *accuracy* through a fixed trial set (Criterion measures the runtime;
//! the accuracy deltas print once at setup).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;
use std::hint::black_box;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn accuracy_of(config: RfipadConfig, location: usize) -> f64 {
    let bench = Bench::calibrate(
        Deployment::build(
            DeploymentSpec {
                location,
                ..DeploymentSpec::default()
            },
            42,
        ),
        config,
        1,
    );
    bench
        .run_motion_batch(&UserProfile::average(), 3, 555)
        .accuracy()
}

fn report_accuracy_deltas() {
    PRINT_ONCE.call_once(|| {
        let base = RfipadConfig::default();
        println!("\n== ablation accuracies (13 strokes × 3, location 3) ==");
        println!(
            "  full pipeline:        {:.3}",
            accuracy_of(base.clone(), 3)
        );
        println!(
            "  w/o diversity suppr.: {:.3}",
            accuracy_of(base.without_suppression(), 3)
        );
        let mut fixed_threshold = RfipadConfig::default();
        fixed_threshold.use_otsu = false;
        println!(
            "  fixed threshold 0.5:  {:.3}",
            accuracy_of(fixed_threshold, 3)
        );
        let mut window3 = RfipadConfig::default();
        window3.window_frames = 3;
        println!("  window = 3 frames:    {:.3}", accuracy_of(window3, 3));
        let mut window8 = RfipadConfig::default();
        window8.window_frames = 8;
        println!("  window = 8 frames:    {:.3}", accuracy_of(window8, 3));
    });
}

fn bench_suppression_cost(c: &mut Criterion) {
    report_accuracy_deltas();
    // Runtime cost of the suppression path itself on a fixed recording.
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('H', &user, 66);
    let with = bench.recognizer.clone();
    let without = rfipad::Recognizer::builder()
        .layout(bench.deployment.layout.clone())
        .calibration(bench.recognizer.calibration().clone())
        .config(RfipadConfig::default().without_suppression())
        .build()
        .expect("valid");
    let mut group = c.benchmark_group("suppression_runtime");
    group.bench_function("with", |b| {
        b.iter(|| with.recognize_session(black_box(&trial.reports)))
    });
    group.bench_function("without", |b| {
        b.iter(|| without.recognize_session(black_box(&trial.reports)))
    });
    group.finish();
}

fn bench_window_sizes(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('Z', &user, 67);
    let mut group = c.benchmark_group("segmentation_window");
    for frames in [3usize, 5, 8] {
        let mut config = RfipadConfig::default();
        config.window_frames = frames;
        let rec = rfipad::Recognizer::builder()
            .layout(bench.deployment.layout.clone())
            .calibration(bench.recognizer.calibration().clone())
            .config(config)
            .build()
            .expect("valid");
        group.bench_function(BenchmarkId::from_parameter(frames), |b| {
            b.iter(|| rec.recognize_session(black_box(&trial.reports)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suppression_cost, bench_window_sizes);
criterion_main!(benches);
