//! Macro-benchmarks of the recognition pipeline: calibration, per-stroke
//! recognition, full-letter sessions, and the online engine — the compute
//! side of the paper's response-time claims (Fig. 24).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rfipad::pipeline::OnlinePipeline;
use rfipad::{Calibration, RfipadConfig};
use std::hint::black_box;

fn bench_calibration(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let run = bench
        .reader
        .run(&bench.deployment.scene, &[], 0.0, 6.0, &mut rng);
    let obs = run.events.clone();
    let layout = bench.deployment.layout.clone();
    let config = RfipadConfig::default();
    c.bench_function("calibration/6s_static", |b| {
        b.iter(|| Calibration::from_observations(black_box(&layout), black_box(&obs), &config))
    });
}

fn bench_stroke_recognition(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::VLine), &user, 7);
    c.bench_function("recognize_session/one_stroke", |b| {
        b.iter(|| {
            bench
                .recognizer
                .recognize_session(black_box(&trial.reports))
        })
    });
}

fn bench_letter_recognition(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('E', &user, 8);
    c.bench_function("recognize_session/letter_E", |b| {
        b.iter(|| {
            bench
                .recognizer
                .recognize_session(black_box(&trial.reports))
        })
    });
}

fn bench_online_pipeline(c: &mut Criterion) {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('T', &user, 9);
    c.bench_function("online_pipeline/letter_T_stream", |b| {
        b.iter_batched(
            || {
                OnlinePipeline::builder()
                    .recognizer(bench.recognizer.clone())
                    .letter_gap_s(1.5)
                    .build()
                    .expect("valid")
            },
            |mut pipeline| {
                let mut events = 0usize;
                for obs in &trial.reports {
                    events += pipeline.push(*obs).len();
                }
                events += pipeline.finish().len();
                events
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_calibration,
    bench_stroke_recognition,
    bench_letter_recognition,
    bench_online_pipeline
);
criterion_main!(benches);
