//! Static-channel cache benchmarks: `Scene::observe` with the per-tag
//! cache versus the from-scratch path (`observe_uncached`), and the
//! end-to-end stroke-trial throughput the cache feeds. The cached/uncached
//! ratio is the Layer-1 speedup of the performance overhaul; the trial
//! benchmarks put it in wall-clock terms per figure trial.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::targets::StaticTarget;
use rf_sim::Vec3;
use rfipad::RfipadConfig;
use std::hint::black_box;

fn calibrated() -> Bench {
    Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    )
}

fn bench_observe(c: &mut Criterion) {
    let bench = calibrated();
    let scene = &bench.deployment.scene;
    let hand = StaticTarget::new(Vec3::new(-0.08, -0.11, 0.04), 0.02);
    let id = bench.deployment.layout.tags()[6];

    let mut group = c.benchmark_group("scene_observe");
    group.bench_function("cached", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 0.0;
        b.iter(|| {
            t += 1e-4;
            scene.observe(black_box(id), black_box(t), &[&hand], &mut rng)
        })
    });
    group.bench_function("uncached", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 0.0;
        b.iter(|| {
            t += 1e-4;
            scene.observe_uncached(black_box(id), black_box(t), &[&hand], &mut rng)
        })
    });
    group.finish();
}

fn bench_stroke_trial(c: &mut Criterion) {
    let bench = calibrated();
    let user = UserProfile::average();
    c.bench_function("stroke_trial/end_to_end", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bench.run_stroke_trial(Stroke::new(StrokeShape::VLine), &user, black_box(seed))
        })
    });
}

fn bench_motion_batch(c: &mut Criterion) {
    let bench = calibrated();
    let user = UserProfile::average();
    let jobs: Vec<(Stroke, u64)> = Stroke::all_thirteen()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, 400 + i as u64))
        .collect();
    let mut group = c.benchmark_group("stroke_trials_13");
    group.bench_function("serial", |b| {
        b.iter(|| {
            jobs.iter()
                .map(|&(s, seed)| bench.run_stroke_trial(s, &user, seed))
                .collect::<Vec<_>>()
                .len()
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| bench.run_stroke_trials(black_box(&jobs), &user).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_observe,
    bench_stroke_trial,
    bench_motion_batch
);
criterion_main!(benches);
