//! Benchmarks of the Gen2 MAC simulator: inventory throughput across link
//! profiles and population sizes — the sampling-rate substrate behind the
//! paper's "prefers slow motions" finding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::{Deployment, DeploymentSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::tags::TagId;
use rfid_gen2::inventory::{Inventory, SearchMode};
use rfid_gen2::link::LinkParams;
use rfid_gen2::reader::{Gen2Reader, ReaderConfig};
use std::hint::black_box;

fn bench_inventory_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory_mac_1s");
    for (name, link) in [
        ("fm0_640k", LinkParams::fast()),
        ("miller4_250k", LinkParams::dense_reader_m4()),
        ("miller8_250k", LinkParams::dense_reader_m8()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut inv = Inventory::new(link, 5, SearchMode::DualTarget, 0.0);
                let mut rng = StdRng::seed_from_u64(1);
                let mut reads = 0u64;
                inv.run(
                    1.0,
                    &mut rng,
                    |_t| (0..25).map(TagId).collect(),
                    |_id, _t| reads += 1,
                );
                black_box(reads)
            })
        });
    }
    group.finish();
}

fn bench_population_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory_population_1s");
    for n in [5u64, 25, 100] {
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let mut inv = Inventory::new(
                    LinkParams::dense_reader_m4(),
                    5,
                    SearchMode::DualTarget,
                    0.0,
                );
                let mut rng = StdRng::seed_from_u64(2);
                let mut reads = 0u64;
                inv.run(
                    1.0,
                    &mut rng,
                    |_t| (0..n).map(TagId).collect(),
                    |_id, _t| reads += 1,
                );
                black_box(reads)
            })
        });
    }
    group.finish();
}

fn bench_full_reader_over_scene(c: &mut Criterion) {
    let deployment = Deployment::build(DeploymentSpec::default(), 42);
    let reader = Gen2Reader::new(ReaderConfig::default());
    c.bench_function("reader_run/1s_scene", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let run = reader.run(&deployment.scene, &[], 0.0, 1.0, &mut rng);
            black_box(run.events.len())
        })
    });
}

criterion_group!(
    benches,
    bench_inventory_mac,
    bench_population_scaling,
    bench_full_reader_over_scene
);
criterion_main!(benches);
