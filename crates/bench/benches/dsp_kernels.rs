//! Micro-benchmarks of the DSP kernels on the recognition hot path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sigproc::filter::{find_troughs, moving_average};
use sigproc::frames::FrameSeq;
use sigproc::otsu::otsu_threshold;
use sigproc::series::TimeSeries;
use sigproc::unwrap::unwrap_phase;
use std::hint::black_box;

fn wrapped_phases(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (0.21 * i as f64 + (i as f64 * 0.05).sin()).rem_euclid(std::f64::consts::TAU))
        .collect()
}

fn rss_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as f64 - n as f64 / 2.0) / (n as f64 / 10.0);
            -45.0 - 8.0 * (-x * x).exp() + 0.4 * (i as f64 * 1.7).sin()
        })
        .collect()
}

fn bench_unwrap(c: &mut Criterion) {
    let data = wrapped_phases(1000);
    c.bench_function("unwrap_phase/1000", |b| {
        b.iter(|| unwrap_phase(black_box(&data)))
    });
}

fn bench_otsu(c: &mut Criterion) {
    // 25-cell gray image, the RFIPad case.
    let image: Vec<f64> = (0..25)
        .map(|i| {
            if i % 5 == 2 {
                8.0 + i as f64 * 0.1
            } else {
                0.3
            }
        })
        .collect();
    c.bench_function("otsu_threshold/25", |b| {
        b.iter(|| otsu_threshold(black_box(&image)))
    });
}

fn bench_framing(c: &mut Criterion) {
    // 25 streams × 10 s at ~10 Hz per stream — a full letter recording.
    let streams: Vec<TimeSeries> = (0..25)
        .map(|t| {
            (0..100)
                .map(|j| (j as f64 * 0.1 + t as f64 * 0.001, (j as f64 * 0.3).sin()))
                .collect()
        })
        .collect();
    c.bench_function("frame_rms/25x100", |b| {
        b.iter(|| FrameSeq::build(black_box(&streams), 0.0, 10.0, 0.1))
    });
}

fn bench_troughs(c: &mut Criterion) {
    let signal = rss_signal(200);
    c.bench_function("find_troughs/200", |b| {
        b.iter_batched(
            || moving_average(&signal, 2),
            |s| find_troughs(black_box(&s), 1.5, 3),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_unwrap,
    bench_otsu,
    bench_framing,
    bench_troughs
);
criterion_main!(benches);
