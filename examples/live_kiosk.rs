//! Live kiosk: the online pipeline on its own thread, fed over crossbeam
//! channels at (accelerated) real-time pacing — the deployment shape of an
//! actual installation, where LLRP reports stream in from the network and
//! UI events stream out.
//!
//! Run with: `cargo run --release --example live_kiosk`

use crossbeam::channel;
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfipad::pipeline::{spawn, PipelineEvent};
use rfipad::RfipadConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::volunteer(7);
    let writer = Writer::new(bench.deployment.pad, user.clone());
    let mut rng = StdRng::seed_from_u64(314);

    // Pre-record the reader stream for a user writing "HI".
    let sessions = writer.write_word("HI", 1.0, 1.8, &mut rng);
    let mut observations = Vec::new();
    for session in &sessions {
        observations.extend(bench.record_session(session, &user, &mut rng));
    }
    observations.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"));
    println!(
        "streaming {} tag reads through the threaded pipeline…",
        observations.len()
    );

    // Spin up the engine on its own thread.
    let pipeline = rfipad::OnlinePipeline::builder()
        .recognizer(bench.recognizer.clone())
        .letter_gap_s(1.8)
        .build()?;
    let (obs_tx, obs_rx) = channel::unbounded();
    let (handle, events) = spawn(pipeline, obs_rx);

    // Feed the stream (drop the channel to signal end-of-stream), then
    // drain events as the kiosk UI would.
    let feeder = std::thread::spawn(move || {
        for obs in observations {
            if obs_tx.send(obs).is_err() {
                return;
            }
        }
    });

    let mut word = String::new();
    for event in events.iter() {
        match event {
            PipelineEvent::StrokeDetected {
                stroke,
                response_time_s,
                ..
            } => println!(
                "  [t={:6.2}s] stroke {:6} detected ({:.1} ms compute)",
                stroke.span.end,
                stroke.stroke.to_string(),
                response_time_s * 1000.0
            ),
            PipelineEvent::LetterRecognized {
                letter, strokes, ..
            } => {
                let l = letter.unwrap_or('?');
                println!("  [letter ] {l}  ({} strokes composed)", strokes.len());
                word.push(l);
            }
        }
    }
    feeder.join().expect("feeder finished");
    handle.join().expect("pipeline finished");

    println!("\nkiosk read: \"{word}\"");
    assert_eq!(word, "HI");

    // The process-global telemetry registry saw the whole run; these are
    // the pipeline counters a fleet scraper would collect from the
    // engine's /metrics endpoint (see EngineBuilder::metrics_addr).
    println!("\npipeline telemetry:");
    let exposition = obs::registry().render_prometheus();
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("rfipad_pipeline_"))
    {
        println!("  {line}");
    }
    Ok(())
}
