//! Deployment planner: the §IV engineering guidance as a tool.
//!
//! Given a desired pad size, this example walks the paper's deployment
//! checklist: which commercial tag design to use (RCS → inter-tag
//! interference), how far apart to place tags (near/far-field boundaries),
//! how far the reader antenna must sit for 3 dB beam coverage, and whether
//! every tag closes its forward link at the chosen TX power.
//!
//! Run with: `cargo run --release --example deployment_planner`

use rf_sim::antenna::ReaderAntenna;
use rf_sim::coupling;
use rf_sim::environment::Environment;
use rf_sim::geometry::Vec3;
use rf_sim::scene::{Scene, SceneConfig};
use rf_sim::tags::{Facing, Tag, TagArray, TagId, TagModel};
use rf_sim::units::{Dbi, Dbm, Meters, CARRIER_FREQUENCY};

fn main() {
    let rows = 5;
    let cols = 5;
    let spacing = 0.06;
    let tx_power = Dbm(30.0);
    let lambda = CARRIER_FREQUENCY.wavelength();

    println!("== RFIPad deployment planner ==");
    println!(
        "pad: {rows}×{cols} tags at {:.0} cm pitch\n",
        spacing * 100.0
    );

    // 1. Tag model choice: smallest RCS shadows neighbours least.
    println!("1) tag model (lower same-facing shadow at the chosen pitch is better):");
    let mut best: Option<(TagModel, f64)> = None;
    for model in TagModel::all() {
        let a = Tag::new(TagId(0), Vec3::ZERO, Facing::Front, model, 0.0);
        let b = Tag::new(
            TagId(1),
            Vec3::new(spacing, 0.0, 0.0),
            Facing::Front,
            model,
            0.0,
        );
        let shadow = coupling::pair_shadow_db(&a, &b, lambda).value();
        println!("   {model:<28} neighbour shadow {shadow:>5.2} dB");
        if best.map(|(_, s)| shadow < s).unwrap_or(true) {
            best = Some((model, shadow));
        }
    }
    let (model, _) = best.expect("models evaluated");
    println!("   -> choose {model}\n");

    // 2. Spacing sanity: the paper recommends the transition region between
    //    near field (λ/2π) and far field (2λ/2π).
    let nf = coupling::near_field_boundary(lambda).value();
    let ff = coupling::far_field_boundary(lambda).value();
    println!(
        "2) spacing: near field ends at {:.1} cm, far field begins at {:.1} cm",
        nf * 100.0,
        ff * 100.0
    );
    println!(
        "   chosen pitch {:.0} cm sits in the transition region: {}\n",
        spacing * 100.0,
        if spacing > nf && spacing < ff * 1.3 {
            "OK"
        } else {
            "RECONSIDER"
        }
    );

    // 3. Reader distance for 3 dB beam coverage (paper Eq. 13-14).
    let array = TagArray::grid(rows, cols, spacing, Vec3::ZERO, model, |_| 0.0);
    let center = array.center();
    let probe_antenna = ReaderAntenna::new(
        Vec3::new(center.x, center.y, -1.0),
        Vec3::new(0.0, 0.0, 1.0),
        Dbi(8.0),
    );
    let min_d = probe_antenna.min_coverage_distance(Meters(array.plate_len()));
    println!(
        "3) 8 dBi antenna beam angle {:.0}°; minimum distance for 3 dB coverage of the\n   {:.0} cm plate: {:.1} cm (paper computes ≈31.7 cm)\n",
        probe_antenna.beam_angle().to_degrees(),
        array.plate_len() * 100.0,
        min_d.value() * 100.0
    );

    // 4. Forward-link check at the recommended distance.
    let distance = min_d.value().max(0.32);
    let antenna = ReaderAntenna::new(
        Vec3::new(center.x, center.y, -distance),
        Vec3::new(0.0, 0.0, 1.0),
        Dbi(8.0),
    );
    let scene = Scene::new(
        antenna,
        array.tags().to_vec(),
        Environment::office_location(1),
        SceneConfig {
            tx_power,
            ..SceneConfig::default()
        },
    );
    let mut worst: Option<(TagId, f64)> = None;
    for tag in scene.tags() {
        let margin = scene.forward_power_at(tag, &[]).value() - tag.model.sensitivity().value();
        if worst.map(|(_, m)| margin < m).unwrap_or(true) {
            worst = Some((tag.id, margin));
        }
    }
    let (worst_tag, margin) = worst.expect("tags present");
    println!(
        "4) forward link at {:.0} cm, {:.1} dBm TX: worst tag {worst_tag} has {margin:+.1} dB margin — {}",
        distance * 100.0,
        tx_power.value(),
        if margin > 3.0 { "all tags readable with headroom" } else { "increase TX power or move closer" }
    );
    assert!(margin > 0.0, "deployment must close the forward link");
}
