//! Quickstart: build a simulated RFIPad deployment, calibrate it, write a
//! letter in the air, and recognize it — end to end in ~80 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use hand_kinematics::pad::PadFrame;
use hand_kinematics::trajectory::HandTarget;
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::antenna::ReaderAntenna;
use rf_sim::environment::Environment;
use rf_sim::geometry::Vec3;
use rf_sim::scene::{Scene, SceneConfig};
use rf_sim::tags::{TagArray, TagModel};
use rf_sim::targets::MovingTarget;
use rf_sim::units::Dbi;
use rfid_gen2::reader::{Gen2Reader, ReaderConfig};
use rfipad::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. The pad: a 5×5 plate of cheap passive tags at 6 cm pitch, with the
    //    reader antenna 32 cm behind it (the paper's NLOS deployment).
    let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| {
        (id.0 as f64 * 2.399).rem_euclid(std::f64::consts::TAU)
    });
    let center = array.center();
    let antenna = ReaderAntenna::new(
        Vec3::new(center.x, center.y, -0.32),
        Vec3::new(0.0, 0.0, 1.0),
        Dbi(8.0),
    );
    let scene = Scene::new(
        antenna,
        array.tags().to_vec(),
        Environment::office_location(1),
        SceneConfig::default(),
    );
    let reader = Gen2Reader::new(ReaderConfig::default());

    // 2. Calibrate: a few seconds of static reads give every tag's mean
    //    phase (tag diversity) and deviation bias (location diversity).
    let calibration_run = reader.run(&scene, &[], 0.0, 6.0, &mut rng);
    let static_obs = &calibration_run.events;
    let layout = ArrayLayout::new(
        array.rows(),
        array.cols(),
        array.tags().iter().map(|t| t.id).collect(),
    );
    let config = RfipadConfig::default();
    let calibration = Calibration::from_observations(&layout, static_obs, &config)?;
    let recognizer = Recognizer::builder()
        .layout(layout)
        .calibration(calibration)
        .config(config)
        .build()?;
    println!("calibrated from {} static reads", static_obs.len());

    // 3. A user writes the letter 'R' in the air above the pad.
    let pad = PadFrame::over_array(&array, 0.03);
    let user = UserProfile::average();
    let writer = Writer::new(pad, user.clone());
    let session = writer.write_letter('R', 1.0, &mut rng);
    println!(
        "user writes 'R': {} strokes over {:.1} s",
        session.strokes.len(),
        session.end_time()
    );

    // 4. The reader inventories continuously while the hand (and forearm)
    //    move; the recognizer consumes the report stream.
    let hand = HandTarget::new(session.trajectory.clone(), user.hand_rcs_m2);
    let arm = HandTarget::with_offset(session.trajectory.clone(), user.arm_rcs_m2, user.arm_offset);
    let targets: Vec<&dyn MovingTarget> = vec![&hand, &arm];
    let run = reader.run(&scene, &targets, -0.5, session.end_time() + 1.5, &mut rng);
    println!("reader captured {} tag reads", run.events.len());

    let result = recognizer.recognize_session(&run.events);

    // 5. What did RFIPad see?
    for (i, stroke) in result.strokes.iter().enumerate() {
        println!(
            "  stroke {}: {} over {:.2}..{:.2} s",
            i + 1,
            stroke.stroke,
            stroke.span.start,
            stroke.span.end
        );
    }
    println!("recognized letter: {:?}", result.letter);
    assert_eq!(result.letter, Some('R'), "expected to recognize the R");
    Ok(())
}
