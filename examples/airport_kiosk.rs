//! Airport kiosk: word-level in-air queries — the paper's stated future
//! work ("recognition of a succession of letters"), built by chaining the
//! letter recognizer across a writing session with per-letter pauses.
//!
//! A traveller walks up to a flight-information kiosk and writes a flight
//! code ("KLM") in the air over the tag plate; the kiosk assembles the
//! letters and answers the query. No touch, no wearable, no camera.
//!
//! Run with: `cargo run --release --example airport_kiosk`

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfipad::prelude::*;
use rfipad::words::WordDecoder;

/// The kiosk's tiny flight database.
fn flight_info(code: &str) -> Option<&'static str> {
    match code {
        "KLM" => Some("KLM 605 to Amsterdam — Gate B12, boarding 14:20"),
        "LH" => Some("Lufthansa 453 to Munich — Gate A3, on time"),
        "UA" => Some("United 88 to Chicago — Gate C7, delayed 25 min"),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::volunteer(2);
    let writer = Writer::new(bench.deployment.pad, user.clone());
    let mut rng = StdRng::seed_from_u64(2024);

    let query = "KLM";
    println!("traveller writes \"{query}\" in the air over the plate…\n");

    // Each letter is a separate writing session; the kiosk recognizes them
    // one at a time (the hand leaves the pad between letters, which is the
    // natural letter delimiter).
    let sessions = writer.write_word(query, 1.0, 1.5, &mut rng);
    // The kiosk corrects letter sequences against its flight vocabulary —
    // the word-level extension the paper leaves as future work.
    let mut decoder = WordDecoder::with_vocabulary(["KLM", "LH", "UA"]);
    for session in &sessions {
        let observations = bench.record_session(session, &user, &mut rng);
        let result = bench.recognizer.recognize_session(&observations);
        let strokes: Vec<String> = result
            .strokes
            .iter()
            .map(|s| s.stroke.to_string())
            .collect();
        match result.letter {
            Some(letter) => println!(
                "  letter recognized: {letter}   (strokes: {})",
                strokes.join(" ")
            ),
            None => println!("  letter not recognized (strokes: {})", strokes.join(" ")),
        }
        decoder.push_letter(result.letter);
    }
    let word = decoder.end_word().expect("letters were written");
    let recognized = word.text().to_string();

    println!(
        "\nkiosk parsed query: \"{}\" (raw \"{}\", corrected at distance {})",
        recognized, word.raw, word.distance
    );
    match flight_info(&recognized) {
        Some(info) => println!("kiosk display: {info}"),
        None => println!("kiosk display: no flight matching \"{recognized}\""),
    }
    assert_eq!(recognized, query, "the kiosk should read back the query");
    Ok(())
}
