//! Virtual touch screen: the paper's motivating interaction — clicks,
//! page swipes, and scroll gestures over the pad, recognized live through
//! the streaming pipeline.
//!
//! A kiosk UI only needs three of RFIPad's motions: `click` to select,
//! `−` (left/right) to flip pages, `|` (up/down) to scroll. This example
//! simulates a user operating such a kiosk and maps recognized strokes to
//! UI commands as they arrive from the online engine.
//!
//! Run with: `cargo run --release --example virtual_keyboard`

use hand_kinematics::stroke::{default_placement, Stroke, StrokeShape};
use hand_kinematics::trajectory::HandTarget;
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::targets::MovingTarget;
use rfipad::pipeline::{OnlinePipeline, PipelineEvent};
use rfipad::prelude::*;

// Reuse the experiment harness's deployment builder: it assembles the same
// scene the quickstart builds by hand.
use experiments::{Bench, Deployment, DeploymentSpec};

/// The kiosk commands the touch-screen motions map to.
fn command_for(stroke: Stroke) -> &'static str {
    match (stroke.shape, stroke.reversed) {
        (StrokeShape::Click, _) => "SELECT",
        (StrokeShape::HLine, false) => "NEXT PAGE",
        (StrokeShape::HLine, true) => "PREVIOUS PAGE",
        (StrokeShape::VLine, false) => "SCROLL DOWN",
        (StrokeShape::VLine, true) => "SCROLL UP",
        _ => "(unmapped gesture)",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let writer = Writer::new(bench.deployment.pad, user.clone());
    let mut rng = StdRng::seed_from_u64(77);

    // The user's interaction: scroll down twice, flip a page, click.
    let gestures = [
        Stroke::new(StrokeShape::VLine),
        Stroke::new(StrokeShape::VLine),
        Stroke::new(StrokeShape::HLine),
        Stroke::new(StrokeShape::Click),
    ];

    // Build one long session with pauses between gestures.
    let mut all_observations = Vec::new();
    let mut t = 1.0;
    let mut truth = Vec::new();
    for &gesture in &gestures {
        let session = writer.write_stroke(default_placement(gesture), t, &mut rng);
        let hand = HandTarget::new(session.trajectory.clone(), user.hand_rcs_m2);
        let arm =
            HandTarget::with_offset(session.trajectory.clone(), user.arm_rcs_m2, user.arm_offset);
        let targets: Vec<&dyn MovingTarget> = vec![&hand, &arm];
        let start = t - 0.8;
        let run = bench.reader.run(
            &bench.deployment.scene,
            &targets,
            start,
            session.end_time() - start + 1.0,
            &mut rng,
        );
        all_observations.extend(run.events.iter().copied());
        truth.push(gesture);
        t = session.end_time() + 2.5;
    }

    // Stream the reads through the online engine and print UI commands as
    // the kiosk would execute them.
    let mut pipeline = OnlinePipeline::builder()
        .recognizer(bench.recognizer.clone())
        .letter_gap_s(1.8)
        .build()?;
    let mut executed = Vec::new();
    for obs in &all_observations {
        for event in pipeline.push(*obs) {
            if let PipelineEvent::StrokeDetected {
                stroke,
                response_time_s,
                ..
            } = event
            {
                let cmd = command_for(stroke.stroke);
                println!(
                    "t={:6.2}s  gesture {:8}  ->  {:14} (reported in {:.1} ms)",
                    stroke.span.end,
                    stroke.stroke.to_string(),
                    cmd,
                    response_time_s * 1000.0
                );
                executed.push(stroke.stroke);
            }
        }
    }
    for event in pipeline.finish() {
        if let PipelineEvent::StrokeDetected { stroke, .. } = event {
            println!(
                "t=  end   gesture {:8}  ->  {}",
                stroke.stroke.to_string(),
                command_for(stroke.stroke)
            );
            executed.push(stroke.stroke);
        }
    }

    println!(
        "\n{} gestures performed, {} commands executed, {} matched exactly",
        truth.len(),
        executed.len(),
        truth.iter().zip(&executed).filter(|(a, b)| a == b).count()
    );
    assert!(
        executed.len() == truth.len(),
        "every gesture should produce exactly one command"
    );
    Ok(())
}
