//! Checkpoint/restore equivalence over the golden trace: interrupting a
//! streaming session at *any* report boundary, freezing it into a
//! [`PipelineCheckpoint`], shipping it through its JSON wire form, and
//! resuming on a fresh pipeline must reproduce the uninterrupted event
//! stream bit for bit — the property session migration rests on.

use experiments::golden::{golden_bench, golden_trial};
use proptest::prelude::*;
use rfid_gen2::report::TagReport;
use rfipad::engine::normalize_events;
use rfipad::{OnlinePipeline, PipelineCheckpoint, PipelineEvent, Recognizer};
use std::sync::OnceLock;

/// The golden fixture is seeded and deterministic but costly to rebuild,
/// so every proptest case shares one recording + recognizer.
fn fixture() -> &'static (Vec<TagReport>, Recognizer) {
    static FIXTURE: OnceLock<(Vec<TagReport>, Recognizer)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let bench = golden_bench();
        let trial = golden_trial(&bench);
        (trial.reports, bench.recognizer)
    })
}

fn pipeline() -> OnlinePipeline {
    OnlinePipeline::builder()
        .recognizer(fixture().1.clone())
        .letter_gap_s(1.5)
        .build()
        .expect("valid gap")
}

fn run_all(p: &mut OnlinePipeline, reports: &[TagReport]) -> Vec<PipelineEvent> {
    let mut events = Vec::new();
    for &r in reports {
        p.push_into(r, &mut events);
    }
    events
}

fn uninterrupted() -> &'static Vec<PipelineEvent> {
    static EVENTS: OnceLock<Vec<PipelineEvent>> = OnceLock::new();
    EVENTS.get_or_init(|| {
        let mut p = pipeline();
        let mut events = run_all(&mut p, &fixture().0);
        p.finish_into(&mut events);
        normalize_events(&mut events);
        events
    })
}

/// Runs the golden trace with an interruption after `split` reports:
/// checkpoint, round-trip the checkpoint through JSON, restore into a
/// fresh pipeline, and continue there.
fn interrupted_at(split: usize) -> Vec<PipelineEvent> {
    let (reports, _) = fixture();
    let mut first = pipeline();
    let mut events = run_all(&mut first, &reports[..split]);
    let checkpoint = first.checkpoint();
    drop(first); // the original session is gone; only the snapshot survives
    let wire = checkpoint.to_json();
    let parsed = PipelineCheckpoint::from_json(&wire).expect("wire form parses");
    assert_eq!(parsed, checkpoint, "JSON round-trip must be lossless");
    let mut resumed = pipeline();
    resumed.restore(&parsed).expect("restore");
    events.extend(run_all(&mut resumed, &reports[split..]));
    resumed.finish_into(&mut events);
    normalize_events(&mut events);
    events
}

proptest! {
    #[test]
    fn interrupting_anywhere_reproduces_the_uninterrupted_stream(
        split in 1usize..1301
    ) {
        prop_assume!(split < fixture().0.len());
        prop_assert_eq!(&interrupted_at(split), uninterrupted());
    }
}

#[test]
fn interrupting_mid_stroke_reproduces_the_uninterrupted_stream() {
    // Deterministic anchors on top of the random sweep: mid-stroke,
    // immediately after the first report, and just before the end.
    let n = fixture().0.len();
    for split in [1, n / 3, n / 2, n - 1] {
        assert_eq!(
            interrupted_at(split),
            *uninterrupted(),
            "split at {split}/{n}"
        );
    }
}

#[test]
fn corrupted_checkpoints_are_rejected() {
    let (reports, _) = fixture();
    let mut p = pipeline();
    let _ = run_all(&mut p, &reports[..reports.len() / 2]);
    let wire = p.checkpoint().to_json();

    assert!(PipelineCheckpoint::from_json("").is_err());
    assert!(PipelineCheckpoint::from_json("{}").is_err());
    assert!(PipelineCheckpoint::from_json(&wire[..wire.len() / 2]).is_err());

    // A foreign version number must be refused, not guessed at.
    let foreign = wire.replacen("\"version\":1", "\"version\":99", 1);
    assert!(PipelineCheckpoint::from_json(&foreign).is_err());

    // Unknown fields mean the document is not ours.
    let unknown = format!("{{\"mystery\":4,{}", &wire[1..]);
    assert!(PipelineCheckpoint::from_json(&unknown).is_err());
}

#[test]
fn restore_rejects_a_mismatched_pipeline_configuration() {
    let (reports, recognizer) = fixture();
    let mut p = pipeline();
    let _ = run_all(&mut p, &reports[..reports.len() / 2]);
    let checkpoint = p.checkpoint();
    let mut other_gap = OnlinePipeline::builder()
        .recognizer(recognizer.clone())
        .letter_gap_s(2.5)
        .build()
        .expect("valid gap");
    let err = other_gap.restore(&checkpoint).expect_err("gap mismatch");
    assert!(
        err.to_string().contains("checkpoint"),
        "unexpected error: {err}"
    );
}
