//! The TCP ingest server is a transparent transport: replaying the golden
//! trace over loopback — concurrent connections, multiplexed sessions,
//! batched frames — must reproduce the in-process batched engine replay
//! bit for bit, and backpressure must surface on the wire as typed SHED
//! deliveries, never as silent loss.

use experiments::golden::{golden_bench, GOLDEN_LETTER};
use experiments::serveload::{
    golden_reports, replay_over_loopback, serial_replay, session_pipeline, LoopbackConfig,
};
use rfid_gen2::report::TagReport;
use rfid_gen2::wire::IngestClient;
use rfipad::engine::{normalize_events, Backpressure, Engine};
use rfipad::serve::{CollectingSink, EventSink, IngestServer};
use rfipad::{PipelineEvent, Recognizer};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The golden fixture is seeded and deterministic but costly to rebuild,
/// so every test shares one recording + recognizer + reference replay.
fn fixture() -> &'static (Arc<Vec<TagReport>>, Recognizer, Vec<PipelineEvent>) {
    static FIXTURE: OnceLock<(Arc<Vec<TagReport>>, Recognizer, Vec<PipelineEvent>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let bench = golden_bench();
        let reports = Arc::new(golden_reports(&bench));
        let expected = serial_replay(&bench.recognizer, &reports);
        (reports, bench.recognizer, expected)
    })
}

/// The in-process reference the wire must match: the golden trace pushed
/// through an engine session in batches, exactly as `engine_bench` does.
fn in_process_batched_replay(
    recognizer: &Recognizer,
    reports: &[TagReport],
    batch: usize,
) -> Vec<PipelineEvent> {
    let engine = Engine::builder().workers(2).build().expect("engine");
    let session = engine
        .open_session("in-process", session_pipeline(recognizer))
        .expect("open");
    let mut receipt = rfipad::IngestReceipt::default();
    for chunk in reports.chunks(batch) {
        receipt += session
            .ingest_batch(chunk.iter().copied().collect())
            .expect("ingest");
    }
    assert_eq!(receipt.accepted, reports.len() as u64);
    assert_eq!(receipt.dropped, 0);
    let mut events = session.close().expect("close");
    normalize_events(&mut events);
    engine.shutdown();
    events
}

#[test]
fn loopback_replay_is_bit_identical_to_in_process_batched_replay() {
    let (reports, recognizer, expected) = fixture();
    // The reference chain: serial push == in-process batched ingest.
    let in_process = in_process_batched_replay(recognizer, reports, 64);
    assert_eq!(in_process, *expected, "in-process batched replay diverged");
    let letters: Vec<_> = expected
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::LetterRecognized { letter, .. } => Some(*letter),
            _ => None,
        })
        .collect();
    assert_eq!(letters, vec![Some(GOLDEN_LETTER)]);

    // Four concurrent connections, two sessions each, over loopback TCP:
    // replay_over_loopback itself asserts every served session matches
    // `expected`, which the in-process replay just reproduced.
    let run = replay_over_loopback(
        recognizer,
        reports,
        expected,
        &LoopbackConfig {
            connections: 4,
            sessions_per_connection: 2,
            batch: 64,
            jobs: 0,
            capacity: 1024,
            ..LoopbackConfig::default()
        },
    )
    .expect("loopback replay");
    assert_eq!(run.sessions, 8);
    assert_eq!(run.events_per_session, expected.len());
    assert!(run.e2e_samples > 0, "served events carry response times");
    assert!(run.e2e_p50_s <= run.e2e_p99_s);
}

#[test]
fn loopback_replay_is_bit_identical_with_tracing_disabled() {
    // Tracing must be pure observation: with telemetry (and thus every
    // span, hop histogram, and flight recorder) disabled, the served
    // replay still reproduces the reference bit for bit — and it already
    // does so with tracing enabled in the test above.
    let (reports, recognizer, expected) = fixture();
    let restore = obs::max_level();
    obs::set_level(obs::Level::Off);
    let run = replay_over_loopback(
        recognizer,
        reports,
        expected,
        &LoopbackConfig {
            connections: 2,
            sessions_per_connection: 1,
            batch: 64,
            jobs: 2,
            capacity: 1024,
            ..LoopbackConfig::default()
        },
    );
    obs::set_level(restore);
    let run = run.expect("loopback replay with telemetry off");
    assert_eq!(run.sessions, 2);
    assert_eq!(run.events_per_session, expected.len());
}

#[test]
fn backpressure_surfaces_as_typed_shed_deliveries() {
    let (reports, recognizer, _) = fixture();
    let engine = Arc::new(
        Engine::builder()
            .workers(1)
            .queue_capacity(1)
            .backpressure(Backpressure::DropOldest)
            .build()
            .expect("engine"),
    );
    let sink = Arc::new(CollectingSink::new());
    let recognizer = recognizer.clone();
    let server = IngestServer::builder()
        .engine(engine)
        .pipeline_factory(move |_| Ok(session_pipeline(&recognizer)))
        .event_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .read_timeout(Duration::from_millis(5))
        .build()
        .expect("server");
    let mut client = IngestClient::connect(server.local_addr()).expect("connect");
    client.open("busy").expect("open busy");
    client.open("pad").expect("open pad");
    // Wedge the single worker behind large batches on `busy`: it chews
    // through tens of thousands of reports while `pad`'s 1-slot queue
    // receives batch after batch. Each new batch must evict the queued
    // one, and every eviction must come back as a SHED delivery — the
    // wire reports loss, it never hides it.
    let big: Vec<TagReport> = reports.iter().cycle().take(16_000).copied().collect();
    for seq in 1..=3 {
        let delivery = client
            .send_batch("busy", seq, big.iter().copied().collect())
            .expect("send busy");
        assert_eq!(delivery.accepted, big.len() as u64);
    }
    let mut total = rfid_gen2::wire::Delivery::default();
    for seq in 1..=8 {
        let delivery = client
            .send_batch("pad", seq, reports[..64].iter().copied().collect())
            .expect("send pad");
        assert_eq!(
            delivery.accepted, 64,
            "DropOldest always accepts the new batch"
        );
        total.accepted += delivery.accepted;
        total.dropped += delivery.dropped;
    }
    assert_eq!(total.accepted, 512);
    assert!(
        total.dropped > 0,
        "a wedged 1-slot queue must shed: {total:?}"
    );
    assert_eq!(total.dropped % 64, 0, "sheds are whole evicted batches");
    client.close("pad").expect("close pad");
    client.close("busy").expect("close busy");
    server.shutdown();
}
