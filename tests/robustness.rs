//! Failure injection: the recognizer facing degraded deployments —
//! unreadable tags, foreign tag traffic, low power, partial streams.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rfid_gen2::report::{TagId, TagReport};
use rfipad::RfipadConfig;

fn bench() -> Bench {
    Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    )
}

#[test]
fn foreign_tag_traffic_is_ignored() {
    // A public-area reader hears tags that are not part of the pad; their
    // reports must not disturb recognition.
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::Slash), &user, 11);

    let mut polluted = trial.reports.clone();
    // Interleave reports from an unrelated tag population.
    let extra: Vec<TagReport> = trial
        .reports
        .iter()
        .step_by(3)
        .map(|o| {
            TagReport::synthetic(
                TagId(900 + (o.time * 1000.0) as u64 % 7),
                o.time + 1e-4,
                (o.phase * 1.7).rem_euclid(std::f64::consts::TAU),
                -55.0,
            )
        })
        .collect();
    polluted.extend(extra);
    polluted.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"));

    let clean = bench.recognizer.recognize_session(&trial.reports);
    let noisy = bench.recognizer.recognize_session(&polluted);
    assert_eq!(clean.strokes.len(), noisy.strokes.len());
    assert_eq!(
        clean.strokes[0].stroke, noisy.strokes[0].stroke,
        "foreign tags changed the verdict"
    );
}

#[test]
fn dead_tag_degrades_gracefully() {
    // Remove one tag's reports entirely (a dead or shadowed tag): the
    // stroke should still be detected, usually with the right shape.
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::HLine), &user, 12);
    let without_tag: Vec<TagReport> = trial
        .reports
        .iter()
        .filter(|o| o.tag != TagId(12))
        .copied()
        .collect();
    let result = bench.recognizer.recognize_session(&without_tag);
    assert_eq!(result.strokes.len(), 1, "stroke still detected");
}

#[test]
fn truncated_stream_detects_nothing_or_partial() {
    // Cut the stream before the stroke begins: nothing must be detected
    // (no hallucinated motion).
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::VLine), &user, 13);
    let start = trial.session.strokes[0].start;
    let before: Vec<TagReport> = trial
        .reports
        .iter()
        .filter(|o| o.time < start - 0.2)
        .copied()
        .collect();
    let result = bench.recognizer.recognize_session(&before);
    assert!(
        result.strokes.is_empty(),
        "hallucinated {:?}",
        result.strokes
    );
}

#[test]
fn low_power_deployment_still_calibrates() {
    // 15 dBm: the paper's lowest setting. Calibration must succeed and at
    // least some strokes recognize, even if accuracy drops.
    let bench = Bench::calibrate(
        Deployment::build(
            DeploymentSpec {
                tx_power_dbm: 15.0,
                ..DeploymentSpec::default()
            },
            42,
        ),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let batch = bench.run_motion_batch(&user, 2, 44);
    assert!(batch.trials == 26);
    assert!(
        batch.accuracy() > 0.3,
        "even at 15 dBm some motions recognize: {:.2}",
        batch.accuracy()
    );
}

#[test]
fn empty_observation_stream_is_handled() {
    let bench = bench();
    let result = bench.recognizer.recognize_session(&[]);
    assert!(result.strokes.is_empty());
    assert_eq!(result.letter, None);
}

#[test]
fn duplicate_timestamps_do_not_panic() {
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::Backslash), &user, 15);
    let mut duplicated = trial.reports.clone();
    duplicated.extend(trial.reports.iter().copied());
    duplicated.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"));
    let result = bench.recognizer.recognize_session(&duplicated);
    assert!(!result.strokes.is_empty());
}

#[test]
fn half_the_reads_still_detect_strokes() {
    // Simulated undersampling: drop every other read (a faster hand or a
    // busier MAC). Detection should survive even if classification softens.
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::VLine), &user, 16);
    let halved: Vec<TagReport> = trial
        .reports
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, o)| *o)
        .collect();
    let result = bench.recognizer.recognize_session(&halved);
    assert_eq!(
        result.strokes.len(),
        1,
        "stroke lost under 2× undersampling"
    );
}
