//! Determinism guards for the parallel trial fan-out.
//!
//! The experiments harness runs independent trials across worker threads
//! (`rayon`), which is only sound if parallel execution cannot change any
//! reported number. These tests pin that contract: a batch or trial list
//! computed on one thread must be **bit-identical** to the same batch
//! computed across many, and repeated runs with equal seeds must agree
//! exactly. The cached RF scene feeds every trial, so these tests also
//! exercise the static-channel cache under concurrent `observe` calls.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn bench() -> Bench {
    // Force a real multi-threaded fan-out even on single-core CI boxes,
    // where the engine would otherwise take its serial fallback and the
    // tests would vacuously pass. Every test pins the same value, so
    // concurrent test threads setting it is benign.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    )
}

/// Runs the same jobs through the parallel helper (4 workers) and through
/// a plain serial map of the single-trial path, and demands bit-identical
/// observation streams — the contract `run_stroke_trials` promises.
#[test]
fn parallel_stroke_trials_match_serial_reference_exactly() {
    let bench = bench();
    let user = UserProfile::average();
    let jobs: Vec<(Stroke, u64)> = Stroke::all_thirteen()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, 9000 + i as u64))
        .collect();

    let parallel = bench.run_stroke_trials(&jobs, &user);
    let serial: Vec<_> = jobs
        .iter()
        .map(|&(stroke, seed)| bench.run_stroke_trial(stroke, &user, seed))
        .collect();

    assert_eq!(parallel.len(), serial.len());
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.truth, s.truth);
        // The raw reader stream is the full observable state of a trial;
        // exact equality here means every downstream number agrees too.
        assert_eq!(p.reports.len(), s.reports.len());
        for (po, so) in p.reports.iter().zip(&s.reports) {
            assert_eq!(po, so);
        }
        assert_eq!(p.result.strokes.len(), s.result.strokes.len());
        assert_eq!(p.correct(), s.correct());
        assert_eq!(p.shape_correct(), s.shape_correct());
    }
}

/// A motion batch must not depend on scheduling: run it several times and
/// demand bit-identical tallies each time.
#[test]
fn motion_batch_is_bit_stable_across_runs() {
    let bench = bench();
    let user = UserProfile::average();
    let first = bench.run_motion_batch(&user, 2, 1234);
    for _ in 0..3 {
        let again = bench.run_motion_batch(&user, 2, 1234);
        assert_eq!(first.trials, again.trials);
        assert_eq!(first.exact, again.exact);
        assert_eq!(first.shape, again.shape);
        assert_eq!(first.counts.true_positives, again.counts.true_positives);
        assert_eq!(first.counts.false_positives, again.counts.false_positives);
        assert_eq!(first.counts.true_negatives, again.counts.true_negatives);
        assert_eq!(first.counts.false_negatives, again.counts.false_negatives);
    }
}

/// Letter trials go through the same fan-out; pin them too.
#[test]
fn parallel_letter_trials_match_serial_reference_exactly() {
    let bench = bench();
    let user = UserProfile::average();
    let jobs: Vec<(char, u64)> = ['C', 'I', 'L', 'V', 'T']
        .into_iter()
        .enumerate()
        .map(|(i, c)| (c, 5000 + i as u64 * 7))
        .collect();

    let parallel = bench.run_letter_trials(&jobs, &user);
    let serial: Vec<_> = jobs
        .iter()
        .map(|&(letter, seed)| bench.run_letter_trial(letter, &user, seed))
        .collect();

    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.truth, s.truth);
        assert_eq!(p.result.letter, s.result.letter);
        for (po, so) in p.reports.iter().zip(&s.reports) {
            assert_eq!(po, so);
        }
    }
}
