//! Live-engine exposition coverage: with the HTTP endpoint enabled, a
//! serving [`rfipad::Engine`] must expose every telemetry layer at once —
//! reader counters from the simulated Gen2 inventory, per-stage pipeline
//! histograms, engine aggregates, and per-session queue/drop gauges —
//! and the text must survive the exposition-format validator.

use experiments::golden::{golden_bench, golden_trial, GOLDEN_LETTER};
use rfipad::{Engine, OnlinePipeline, PipelineEvent};
use std::io::{Read as _, Write as _};

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a body");
    (head.to_string(), body.to_string())
}

#[test]
fn live_engine_exposition_covers_every_layer() {
    // The golden trial runs the simulated Gen2 reader, so the
    // `rfid_reader_*` families are populated before the engine serves.
    let bench = golden_bench();
    let trial = golden_trial(&bench);

    let engine = Engine::builder()
        .workers(2)
        .metrics_addr("127.0.0.1:0")
        .build()
        .expect("engine with endpoint");
    let pipeline = OnlinePipeline::builder()
        .recognizer(bench.recognizer.clone())
        .letter_gap_s(1.5)
        .build()
        .expect("pipeline");
    let session = engine
        .open_session("kiosk-metrics", pipeline)
        .expect("open session");
    for r in &trial.reports {
        session.ingest(*r).expect("ingest");
    }
    // Wait for the worker to process every queued report, so the stage
    // histograms have observations when we scrape.
    loop {
        let stats = session.stats();
        if stats.queue_depth == 0 && stats.push_latency.count == trial.reports.len() as u64 {
            break;
        }
        std::thread::yield_now();
    }

    let addr = engine.metrics_local_addr().expect("endpoint address");
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    obs::expo::validate(&body).expect("well-formed exposition");
    for needle in [
        "rfid_reader_reads_total",
        "rfid_reader_inventory_rounds_total",
        "rfipad_stage_push_seconds_bucket{stage=\"framing\"",
        "rfipad_stage_push_seconds_bucket{stage=\"segmentation\"",
        "rfipad_stage_push_seconds_bucket{stage=\"motion\"",
        "rfipad_stage_push_seconds_bucket{stage=\"letter\"",
        "rfipad_stage_push_seconds_bucket{stage=\"grammar\"",
        "rfipad_pipeline_reports_total",
        "rfipad_engine_reports_in_total",
        "rfipad_engine_push_latency_ns_count",
        "rfipad_hop_seconds_bucket{hop=\"queue\"",
        "rfipad_hop_seconds_bucket{hop=\"stage:framing\"",
        "rfipad_session_queue_depth{session=\"kiosk-metrics\"}",
        "rfipad_session_reports_dropped{session=\"kiosk-metrics\"}",
    ] {
        assert!(body.contains(needle), "exposition is missing {needle}");
    }

    // Health, readiness, and debug routes ride the same endpoint.
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");
    let (head, body) = http_get(addr, "/readyz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ready\n");
    let (head, json) = http_get(addr, "/debug/journal");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(json.starts_with("{\"entries\":["), "{json}");
    let (head, _) = http_get(addr, "/debug/trace/no-such-session");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    let (head, json) = http_get(addr, "/stats.json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(json.contains("\"id\":\"kiosk-metrics\""));
    assert!(json.contains("\"metrics\":{"));

    // The instrumentation must not change recognition.
    let mut events = session.close().expect("close");
    rfipad::engine::normalize_events(&mut events);
    let letters: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::LetterRecognized { letter, .. } => Some(*letter),
            _ => None,
        })
        .collect();
    assert_eq!(letters, vec![Some(GOLDEN_LETTER)]);
    engine.shutdown();
}
