//! Trace record/replay: a recorded session must drive the recognizer and
//! the online pipeline to bit-identical results, in both trace framings.
//!
//! The golden traces under `tests/data/` were recorded once with
//! `trace_tool record`; the golden session itself is fully seeded, so a
//! live re-run here must match them byte for byte — any drift in the
//! simulator, the reader, or the trace codec fails these tests.

use experiments::golden::{golden_bench, golden_trial};
use rfid_gen2::report::TagReport;
use rfid_gen2::source::{LiveSource, ReportSource, TraceSource};
use rfid_gen2::trace::{read_trace_file, write_trace, TraceFormat};
use rfipad::{OnlinePipeline, PipelineEvent, RecognizedStroke, Recognizer};

const GOLDEN_JSONL: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/data/golden_session.jsonl"
);
const GOLDEN_BINARY: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/data/golden_session.rftrace"
);

fn load(path: &str) -> Vec<TagReport> {
    let mut source = TraceSource::open(path).expect("golden trace opens");
    let reports = source.collect_reports();
    assert!(
        source.error().is_none(),
        "decode error: {:?}",
        source.error()
    );
    reports
}

fn assert_reports_bit_identical(a: &[TagReport], b: &[TagReport]) {
    assert_eq!(a.len(), b.len(), "report counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.epc, y.epc, "epc differs at report {i}");
        assert_eq!(x.tag, y.tag, "tag differs at report {i}");
        assert_eq!(
            x.time.to_bits(),
            y.time.to_bits(),
            "time differs at report {i}"
        );
        assert_eq!(
            x.phase.to_bits(),
            y.phase.to_bits(),
            "phase differs at report {i}"
        );
        assert_eq!(
            x.rss_dbm.to_bits(),
            y.rss_dbm.to_bits(),
            "rss differs at report {i}"
        );
        assert_eq!(
            x.doppler_hz.to_bits(),
            y.doppler_hz.to_bits(),
            "doppler differs at report {i}"
        );
        assert_eq!(x.antenna_port, y.antenna_port, "antenna differs at {i}");
        assert_eq!(x.channel_index, y.channel_index, "channel differs at {i}");
    }
}

fn assert_strokes_equal(a: &[RecognizedStroke], b: &[RecognizedStroke]) {
    assert_eq!(a.len(), b.len(), "stroke counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.stroke, y.stroke);
        assert_eq!(x.span, y.span);
        assert_eq!(x.motion, y.motion);
    }
}

/// Online events with the wall-clock `response_time_s` stripped, so replay
/// comparisons only see simulated-time state.
#[derive(Debug, PartialEq)]
enum ReplayEvent {
    Stroke(RecognizedStroke, f64),
    Letter(Option<char>, usize),
}

fn drive_online(recognizer: &Recognizer, reports: &[TagReport]) -> Vec<ReplayEvent> {
    let mut pipeline = OnlinePipeline::builder()
        .recognizer(recognizer.clone())
        .letter_gap_s(1.5)
        .build()
        .expect("valid gap");
    let mut events = Vec::new();
    let record = |batch: Vec<PipelineEvent>, events: &mut Vec<ReplayEvent>| {
        for event in batch {
            match event {
                PipelineEvent::StrokeDetected {
                    stroke,
                    decision_delay_s,
                    ..
                } => events.push(ReplayEvent::Stroke(stroke, decision_delay_s)),
                PipelineEvent::LetterRecognized {
                    letter, strokes, ..
                } => events.push(ReplayEvent::Letter(letter, strokes.len())),
            }
        }
    };
    for r in reports {
        record(pipeline.push(*r), &mut events);
    }
    record(pipeline.finish(), &mut events);
    events
}

#[test]
fn golden_traces_match_live_session_bit_for_bit() {
    let bench = golden_bench();
    let live = golden_trial(&bench);
    for path in [GOLDEN_JSONL, GOLDEN_BINARY] {
        assert_reports_bit_identical(&load(path), &live.reports);
    }
}

#[test]
fn replayed_trace_reproduces_batch_recognition() {
    let bench = golden_bench();
    let live = golden_trial(&bench);
    assert!(live.result.letter.is_some(), "golden session recognizes");
    for path in [GOLDEN_JSONL, GOLDEN_BINARY] {
        let replayed = bench.recognizer.recognize_session(&load(path));
        assert_eq!(replayed.letter, live.result.letter, "letter via {path}");
        assert_strokes_equal(&replayed.strokes, &live.result.strokes);
    }
}

#[test]
fn replayed_trace_reproduces_online_pipeline() {
    let bench = golden_bench();
    let live = golden_trial(&bench);
    let live_events = drive_online(&bench.recognizer, &live.reports);
    assert!(
        live_events
            .iter()
            .any(|e| matches!(e, ReplayEvent::Letter(Some(_), _))),
        "live online run recognizes a letter"
    );
    for path in [GOLDEN_JSONL, GOLDEN_BINARY] {
        let replay_events = drive_online(&bench.recognizer, &load(path));
        assert_eq!(replay_events, live_events, "online replay via {path}");
    }
}

#[test]
fn trace_sources_stream_what_live_source_holds() {
    let bench = golden_bench();
    let live = golden_trial(&bench);
    let from_live = LiveSource::new(live.reports.clone()).collect_reports();
    assert_reports_bit_identical(&from_live, &live.reports);
    for path in [GOLDEN_JSONL, GOLDEN_BINARY] {
        assert_reports_bit_identical(&load(path), &from_live);
    }
}

#[test]
fn truncated_golden_trace_surfaces_one_typed_error_then_ends() {
    // Regression: a binary trace cut mid-record (after a valid length
    // prefix) must surface a typed truncation error exactly once and then
    // keep the iterator terminated — not yield a partial batch, not loop,
    // and not report a generic `UnexpectedEof` I/O error.
    use rfid_gen2::source::SourceError;
    use rfid_gen2::trace::TraceError;

    let bytes = std::fs::read(GOLDEN_BINARY).expect("golden trace bytes");
    let full = load(GOLDEN_BINARY);
    // Cut 5 bytes into the final record's body: its 4-byte length prefix
    // stays intact, the body is truncated.
    let cut = bytes.len() - rfid_gen2::trace::BINARY_RECORD_LEN + 5;
    let mut source = TraceSource::from_reader(&bytes[..cut]).expect("header intact");

    let mut batch = rfid_gen2::report::ReportBatch::new();
    let n = source.next_batch(usize::MAX, &mut batch);
    assert_eq!(
        n,
        full.len() - 1,
        "every record before the truncation decodes"
    );
    assert_eq!(batch.len(), n);
    match source.error() {
        Some(SourceError::Trace(TraceError::Malformed(reason))) => {
            assert!(reason.contains("truncated record body"), "{reason}");
        }
        other => panic!("expected a typed truncation error, got {other:?}"),
    }
    // The latched error pins the stream: no more reports, no more refills.
    assert!(source.next_report().is_none());
    assert_eq!(source.next_batch(16, &mut batch), 0);
    assert_eq!(batch.len(), n, "a dead source must not touch the batch");
    // The error surfaces exactly once.
    assert!(source.take_error().is_some());
    assert!(source.take_error().is_none());

    // A cut inside the 4-byte magic is typed too.
    match TraceSource::from_reader(&bytes[..3]) {
        Err(SourceError::Trace(TraceError::Malformed(reason))) => {
            assert!(reason.contains("truncated magic"), "{reason}");
        }
        other => panic!("expected a typed magic error, got {other:?}"),
    }
}

#[test]
fn reencoding_the_golden_trace_is_byte_stable() {
    // Decode → encode must reproduce the committed files exactly: the
    // codec has one canonical form per framing.
    for (path, format) in [
        (GOLDEN_JSONL, TraceFormat::JsonLines),
        (GOLDEN_BINARY, TraceFormat::Binary),
    ] {
        let reports = read_trace_file(path).expect("golden trace reads");
        let mut reencoded = Vec::new();
        write_trace(&mut reencoded, format, &reports).expect("encode");
        let original = std::fs::read(path).expect("golden trace bytes");
        assert_eq!(reencoded, original, "re-encode of {path} drifted");
    }
}
