//! Protocol-level integration: the Gen2 MAC and LLRP framing carrying real
//! scene observations end to end.

use experiments::{Deployment, DeploymentSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_gen2::llrp::{decode_report, encode_report, LlrpMessage};
use rfid_gen2::reader::{Gen2Reader, ReaderConfig};
use rfid_gen2::{LinkParams, SearchMode};

#[test]
fn report_stream_survives_llrp_round_trip() {
    let deployment = Deployment::build(DeploymentSpec::default(), 42);
    let reader = Gen2Reader::default();
    let mut rng = StdRng::seed_from_u64(1);
    let run = reader.run(&deployment.scene, &[], 0.0, 1.0, &mut rng);
    assert!(run.events.len() > 50);

    // Batch into LLRP messages of ≤ 64 reads, as a real reader would.
    let mut wire = Vec::new();
    for (i, chunk) in run.events.chunks(64).enumerate() {
        wire.extend_from_slice(&encode_report(chunk, i as u32));
    }

    // A client decodes the byte stream back.
    let mut decoded = Vec::new();
    let mut cursor = &wire[..];
    while !cursor.is_empty() {
        let (msg, used) = LlrpMessage::decode(cursor).expect("well-formed frame");
        decoded.extend(decode_report(&msg).expect("valid payload"));
        cursor = &cursor[used..];
    }
    assert_eq!(decoded.len(), run.events.len());
    for (orig, dec) in run.events.iter().zip(&decoded) {
        assert_eq!(orig.epc, dec.epc);
        assert_eq!(orig.tag, dec.tag);
        assert_eq!(orig.channel_index, dec.channel_index);
        assert!((orig.phase - dec.phase).abs() < 0.002);
        assert!((orig.rss_dbm - dec.rss_dbm).abs() < 0.01);
    }
}

#[test]
fn recognition_works_from_decoded_llrp_stream() {
    // The recognizer must be driveable from the wire format alone — the
    // boundary a real deployment has.
    use experiments::Bench;
    use hand_kinematics::stroke::{Stroke, StrokeShape};
    use hand_kinematics::user::UserProfile;
    use rfipad::RfipadConfig;

    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_stroke_trial(Stroke::new(StrokeShape::Backslash), &user, 31);

    // Round-trip the reports through LLRP.
    let wire = encode_report(&trial.reports, 9);
    let (msg, _) = LlrpMessage::decode(&wire).expect("frame");
    let decoded = decode_report(&msg).expect("payload");

    let result = bench.recognizer.recognize_session(&decoded);
    assert_eq!(result.strokes.len(), 1);
    assert_eq!(
        result.strokes[0].stroke.shape,
        StrokeShape::Backslash,
        "recognition through the wire format"
    );
}

#[test]
fn link_profile_changes_sampling_density() {
    let deployment = Deployment::build(DeploymentSpec::default(), 42);
    let mut rng = StdRng::seed_from_u64(3);
    let fast = Gen2Reader::new(ReaderConfig {
        link: LinkParams::fast(),
        ..ReaderConfig::default()
    })
    .run(&deployment.scene, &[], 0.0, 2.0, &mut rng);
    let slow = Gen2Reader::new(ReaderConfig {
        link: LinkParams::dense_reader_m8(),
        ..ReaderConfig::default()
    })
    .run(&deployment.scene, &[], 0.0, 2.0, &mut rng);
    assert!(
        fast.events.len() > 2 * slow.events.len(),
        "FM0 {} vs M8 {}",
        fast.events.len(),
        slow.events.len()
    );
}

#[test]
fn single_target_census_reads_each_tag_once() {
    let deployment = Deployment::build(DeploymentSpec::default(), 42);
    let reader = Gen2Reader::new(ReaderConfig {
        search: SearchMode::SingleTargetA,
        ..ReaderConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(4);
    let run = reader.run(&deployment.scene, &[], 0.0, 3.0, &mut rng);
    let mut per_tag = std::collections::HashMap::new();
    for e in &run.events {
        *per_tag.entry(e.tag).or_insert(0u32) += 1;
    }
    assert_eq!(per_tag.len(), 25, "census covers all tags");
    assert!(per_tag.values().all(|&c| c == 1), "each exactly once");
}
