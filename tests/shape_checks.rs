//! Fast regression guards on the *shapes* EXPERIMENTS.md records: the key
//! orderings and knees of every headline result, at reduced repetition
//! counts so the whole file runs in seconds. If one of these fails, a
//! reproduction claim has silently regressed.

use experiments::{AntennaPlacement, Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn bench_for(spec: DeploymentSpec) -> Bench {
    Bench::calibrate(Deployment::build(spec, 42), RfipadConfig::default(), 1)
}

#[test]
fn table1_nlos_beats_los() {
    let user = UserProfile::average();
    let nlos = bench_for(DeploymentSpec::default()).run_motion_batch(&user, 4, 1000);
    let los = bench_for(DeploymentSpec {
        placement: AntennaPlacement::Los,
        ..DeploymentSpec::default()
    })
    .run_motion_batch(&user, 4, 1000);
    assert!(
        nlos.accuracy() > los.accuracy() + 0.1,
        "NLOS {:.3} must clearly beat LOS {:.3}",
        nlos.accuracy(),
        los.accuracy()
    );
    assert!(
        nlos.accuracy() > 0.9,
        "NLOS ballpark: {:.3}",
        nlos.accuracy()
    );
}

#[test]
fn fig16_suppression_gain_grows_with_multipath() {
    let user = UserProfile::average();
    let gain_at = |location: usize| {
        let spec = DeploymentSpec {
            location,
            ..DeploymentSpec::default()
        };
        let with = Bench::calibrate(
            Deployment::build(spec.clone(), 42),
            RfipadConfig::default(),
            1,
        )
        .run_motion_batch(&user, 4, 3000);
        let without = Bench::calibrate(
            Deployment::build(spec, 42),
            RfipadConfig::default().without_suppression(),
            1,
        )
        .run_motion_batch(&user, 4, 3000);
        with.accuracy() - without.accuracy()
    };
    let g1 = gain_at(1);
    let g3 = gain_at(3);
    assert!(g1 > -0.05, "suppression must not hurt location 1: {g1:.3}");
    assert!(
        g3 > g1 - 0.02,
        "gain should grow with multipath: loc1 {g1:.3} vs loc3 {g3:.3}"
    );
}

#[test]
fn fig17_power_knee_at_the_bottom() {
    let user = UserProfile::average();
    let acc_at = |power: f64| {
        bench_for(DeploymentSpec {
            tx_power_dbm: power,
            ..DeploymentSpec::default()
        })
        .run_motion_batch(&user, 3, 1700)
        .accuracy()
    };
    let low = acc_at(15.0);
    let high = acc_at(32.5);
    assert!(
        high > low + 0.15,
        "accuracy must improve with power: 15 dBm {low:.3} vs 32.5 dBm {high:.3}"
    );
    assert!(high > 0.9, "full power stays strong: {high:.3}");
}

#[test]
fn fig19_error_grows_with_distance() {
    let user = UserProfile::average();
    let acc_at = |d: f64| {
        bench_for(DeploymentSpec {
            distance_m: d,
            ..DeploymentSpec::default()
        })
        .run_motion_batch(&user, 3, 1900)
        .accuracy()
    };
    let near = acc_at(0.2);
    let far = acc_at(0.8);
    assert!(
        near > far + 0.05,
        "accuracy must drop with distance: 20 cm {near:.3} vs 80 cm {far:.3}"
    );
}

#[test]
fn fig20_fast_movers_dip() {
    let bench = bench_for(DeploymentSpec::default());
    let steady = bench.run_motion_batch(&UserProfile::volunteer(2), 4, 2000);
    let fast = bench.run_motion_batch(&UserProfile::volunteer(6), 4, 2000);
    assert!(
        steady.accuracy() > fast.accuracy(),
        "fast mover must dip: steady {:.3} vs fast {:.3}",
        steady.accuracy(),
        fast.accuracy()
    );
    assert!(
        fast.accuracy() > 0.6,
        "but stays usable: {:.3}",
        fast.accuracy()
    );
}

#[test]
fn fig23_letter_accuracy_in_paper_ballpark() {
    let bench = bench_for(DeploymentSpec::default());
    let user = UserProfile::average();
    let mut ok = 0usize;
    let mut n = 0usize;
    for (i, letter) in ['C', 'T', 'H', 'E', 'O', 'L', 'N', 'Z']
        .into_iter()
        .enumerate()
    {
        for rep in 0..3u64 {
            let trial = bench.run_letter_trial(letter, &user, 2300 + rep * 101 + i as u64 * 7);
            n += 1;
            if trial.correct() {
                ok += 1;
            }
        }
    }
    let acc = ok as f64 / n as f64;
    assert!(acc >= 0.85, "letter accuracy ballpark: {acc:.3}");
}

#[test]
fn hopping_destroys_phase_sensing() {
    use rf_sim::scene::{HoppingPlan, Scene, SceneConfig};
    let user = UserProfile::average();
    let base = Deployment::build(DeploymentSpec::default(), 42);
    let scene = Scene::new(
        *base.scene.antenna(),
        base.scene.tags().to_vec(),
        base.scene.environment().clone(),
        SceneConfig {
            hopping: Some(HoppingPlan::fcc()),
            ..base.scene.config().clone()
        },
    );
    let mut deployment = base;
    deployment.scene = scene;
    let hopping =
        Bench::calibrate(deployment, RfipadConfig::default(), 1).run_motion_batch(&user, 2, 7000);
    let fixed = bench_for(DeploymentSpec::default()).run_motion_batch(&user, 2, 7000);
    assert!(
        fixed.accuracy() > hopping.accuracy() + 0.4,
        "hopping must be catastrophic: fixed {:.3} vs hopping {:.3}",
        fixed.accuracy(),
        hopping.accuracy()
    );
}
