//! Validation of the paper's theoretical claims (§III-A1, §IV-B) against
//! the physics substrate — the model-level sanity the paper's equations
//! rest on.

use rf_sim::antenna::ReaderAntenna;
use rf_sim::environment::Environment;
use rf_sim::geometry::Vec3;
use rf_sim::scene::{Scene, SceneConfig};
use rf_sim::tags::{Facing, Tag, TagArray, TagId, TagModel};
use rf_sim::targets::StaticTarget;
use rf_sim::units::{Dbi, CARRIER_FREQUENCY};

fn free_space_scene() -> Scene {
    let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
    let c = array.center();
    let antenna = ReaderAntenna::new(
        Vec3::new(c.x, c.y, -0.32),
        Vec3::new(0.0, 0.0, 1.0),
        Dbi(8.0),
    );
    Scene::new(
        antenna,
        array.tags().to_vec(),
        Environment::free_space(),
        SceneConfig::default(),
    )
}

/// Accumulated phase travel of one tag while the hand sweeps over a lateral
/// range (the Σ|Δθ| of the paper's Eq. 5).
fn accumulated_phase(scene: &Scene, id: TagId, hand_xs: &[f64]) -> f64 {
    let tag = scene.tag(id).expect("tag exists");
    let mut total = 0.0;
    let mut prev: Option<f64> = None;
    for &x in hand_xs {
        let hand = StaticTarget::new(Vec3::new(x, tag.position.y, 0.03), 0.02);
        let phase = -scene.response(tag, 0.0, &[&hand]).arg();
        if let Some(p) = prev {
            let mut d = (phase - p).rem_euclid(std::f64::consts::TAU);
            if d > std::f64::consts::PI {
                d -= std::f64::consts::TAU;
            }
            total += d.abs();
        }
        prev = Some(phase);
    }
    total
}

#[test]
fn eq5_crossed_tag_accumulates_most_phase() {
    // The paper's central hypothesis: the tag the hand passes over
    // accumulates more phase difference than its neighbours.
    let scene = free_space_scene();
    let xs: Vec<f64> = (0..=80).map(|i| 0.12 - 0.1 + i as f64 * 0.0025).collect();
    // The sweep is centred on column 2 (x = 0.12).
    let crossed = accumulated_phase(&scene, TagId(12), &xs);
    let neighbour = accumulated_phase(&scene, TagId(13), &xs); // one column right
    let far = accumulated_phase(&scene, TagId(14), &xs); // two columns right
    assert!(
        crossed > neighbour && neighbour > far,
        "monotonic decay violated: {crossed:.2} / {neighbour:.2} / {far:.2}"
    );
}

#[test]
fn hand_above_five_cm_loses_distinctness() {
    // §VI: the prototype needs the hand within ≈5 cm of the plate.
    let scene = free_space_scene();
    let tag = scene.tag(TagId(12)).expect("exists");
    let swing_at = |z: f64| {
        let near = StaticTarget::new(tag.position + Vec3::new(0.0, 0.0, z), 0.02);
        let with = -scene.response(tag, 0.0, &[&near]).arg();
        let without = -scene.response(tag, 0.0, &[]).arg();
        let mut d = (with - without).rem_euclid(std::f64::consts::TAU);
        if d > std::f64::consts::PI {
            d -= std::f64::consts::TAU;
        }
        d.abs()
    };
    let close = swing_at(0.03);
    let far = swing_at(0.15);
    assert!(
        close > 4.0 * far,
        "influence should collapse beyond 5 cm: {close:.3} vs {far:.3}"
    );
}

#[test]
fn beam_and_coverage_match_paper_numbers() {
    // Eq. 13-14: 8 dBi → beam ≈ 72–81°; coverage distance tens of cm.
    let antenna = ReaderAntenna::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), Dbi(8.0));
    let beam = antenna.beam_angle().to_degrees();
    assert!((60.0..90.0).contains(&beam), "beam {beam}°");
    let d = antenna
        .min_coverage_distance(rf_sim::units::Meters(0.46))
        .value();
    assert!((0.2..0.45).contains(&d), "coverage distance {d} m");
}

#[test]
fn near_far_field_boundaries() {
    let lambda = CARRIER_FREQUENCY.wavelength();
    let nf = rf_sim::coupling::near_field_boundary(lambda).value();
    let ff = rf_sim::coupling::far_field_boundary(lambda).value();
    assert!((0.045..0.06).contains(&nf), "λ/2π = {nf}");
    assert!((ff - 2.0 * nf).abs() < 1e-9);
}

#[test]
fn rcs_ordering_drives_array_shadow_ordering() {
    // Fig. 12's conclusion: shadow strength ordering follows RCS ordering.
    let antenna_pos = Vec3::new(0.0, 0.0, 0.5);
    let victim = Vec3::new(0.0, 0.0, -0.02);
    let shadow_for = |model: TagModel| {
        let tags: Vec<Tag> = (0..15)
            .map(|i| {
                Tag::new(
                    TagId(i),
                    Vec3::new(
                        ((i % 3) as f64 - 1.0) * 0.06,
                        ((i / 3) as f64 - 2.0) * 0.06,
                        0.0,
                    ),
                    Facing::Front,
                    model,
                    0.0,
                )
            })
            .collect();
        rf_sim::coupling::array_shadow_db(&tags, victim, Facing::Front, antenna_pos).value()
    };
    let b = shadow_for(TagModel::TypeB);
    let c = shadow_for(TagModel::TypeC);
    let a = shadow_for(TagModel::TypeA);
    let d = shadow_for(TagModel::TypeD);
    assert!(d > a && a > c && c > b, "shadow ordering {d} {a} {c} {b}");
    assert!(d > 12.0 && b < 4.0, "paper anchors: D≈20 dB, B≈2 dB");
}

#[test]
fn alternating_facings_cut_intra_array_coupling() {
    // The deployment guideline: checkerboard facings keep neighbours from
    // shadowing each other.
    let lambda = CARRIER_FREQUENCY.wavelength();
    let victim = Tag::new(TagId(0), Vec3::ZERO, Facing::Front, TagModel::TypeB, 0.0);
    let same = Tag::new(
        TagId(1),
        Vec3::new(0.06, 0.0, 0.0),
        Facing::Front,
        TagModel::TypeB,
        0.0,
    );
    let opposite = Tag::new(
        TagId(1),
        Vec3::new(0.06, 0.0, 0.0),
        Facing::Back,
        TagModel::TypeB,
        0.0,
    );
    let s_same = rf_sim::coupling::pair_shadow_db(&same, &victim, lambda).value();
    let s_opp = rf_sim::coupling::pair_shadow_db(&opposite, &victim, lambda).value();
    assert!(s_opp < s_same / 5.0, "{s_same} vs {s_opp}");
}
