//! End-to-end integration: physics → Gen2 MAC → calibration → recognition,
//! exactly the path a deployed RFIPad would exercise.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rfipad::pipeline::{OnlinePipeline, PipelineEvent};
use rfipad::RfipadConfig;

fn bench() -> Bench {
    Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    )
}

#[test]
fn thirteen_strokes_recognized_at_paper_accuracy() {
    let bench = bench();
    let user = UserProfile::average();
    let batch = bench.run_motion_batch(&user, 5, 42);
    assert!(
        batch.accuracy() >= 0.85,
        "stroke accuracy {:.3} below the paper's ballpark",
        batch.accuracy()
    );
    assert!(batch.counts.fnr() < 0.1, "FNR {:.3}", batch.counts.fnr());
}

#[test]
fn representative_letters_recognized() {
    let bench = bench();
    let user = UserProfile::average();
    let mut ok = 0;
    let letters = ['I', 'C', 'T', 'L', 'H', 'O', 'D', 'E', 'N', 'Z'];
    for (i, &letter) in letters.iter().enumerate() {
        let trial = bench.run_letter_trial(letter, &user, 500 + i as u64);
        if trial.correct() {
            ok += 1;
        }
    }
    assert!(ok >= 8, "only {ok}/10 letters recognized");
}

#[test]
fn letter_session_segments_every_stroke() {
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('E', &user, 77);
    let outcome = trial.segmentation_outcome();
    assert_eq!(outcome.truth_count, 4);
    assert!(outcome.matched >= 3, "{outcome:?}");
    assert_eq!(outcome.missed + outcome.matched, 4);
}

#[test]
fn online_pipeline_matches_offline_result() {
    let bench = bench();
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('T', &user, 88);

    let mut pipeline = OnlinePipeline::builder()
        .recognizer(bench.recognizer.clone())
        .letter_gap_s(1.5)
        .build()
        .expect("valid gap");
    let mut online_letter = None;
    let mut online_strokes = Vec::new();
    for obs in &trial.reports {
        for event in pipeline.push(*obs) {
            match event {
                PipelineEvent::StrokeDetected { stroke, .. } => online_strokes.push(stroke.stroke),
                PipelineEvent::LetterRecognized { letter, .. } => online_letter = letter,
            }
        }
    }
    for event in pipeline.finish() {
        if let PipelineEvent::LetterRecognized { letter, .. } = event {
            online_letter = letter;
        }
    }
    assert_eq!(online_letter, trial.result.letter);
    assert_eq!(online_strokes.len(), trial.result.strokes.len());
}

#[test]
fn suppression_ablation_never_beats_suppression_in_rich_multipath() {
    let spec = DeploymentSpec {
        location: 4,
        ..DeploymentSpec::default()
    };
    let user = UserProfile::average();
    let with = Bench::calibrate(
        Deployment::build(spec.clone(), 42),
        RfipadConfig::default(),
        1,
    )
    .run_motion_batch(&user, 8, 99);
    let without = Bench::calibrate(
        Deployment::build(spec, 42),
        RfipadConfig::default().without_suppression(),
        1,
    )
    .run_motion_batch(&user, 8, 99);
    assert!(
        with.accuracy() >= without.accuracy(),
        "suppression {:.3} vs baseline {:.3}",
        with.accuracy(),
        without.accuracy()
    );
}

#[test]
fn fast_writers_lose_accuracy() {
    // The paper's Fig. 20/21 finding: volunteers 6 and 9 (fast movers) dip.
    let bench = bench();
    let slow = bench.run_motion_batch(&UserProfile::volunteer(3), 4, 123);
    let fast = bench.run_motion_batch(&UserProfile::volunteer(3).with_speed(3.0), 4, 123);
    assert!(
        fast.accuracy() <= slow.accuracy(),
        "fast {:.3} should not beat slow {:.3}",
        fast.accuracy(),
        slow.accuracy()
    );
}

#[test]
fn direction_pairs_distinguished() {
    // Both directions of the same shape must be reported distinctly.
    let bench = bench();
    let user = UserProfile::average();
    let mut ok = 0;
    let mut n = 0;
    for shape in [StrokeShape::HLine, StrokeShape::VLine] {
        for reversed in [false, true] {
            let stroke = if reversed {
                Stroke::reversed(shape)
            } else {
                Stroke::new(shape)
            };
            for rep in 0..4 {
                let trial = bench.run_stroke_trial(stroke, &user, 9000 + rep);
                n += 1;
                if trial.correct() {
                    ok += 1;
                }
            }
        }
    }
    assert!(ok as f64 / n as f64 >= 0.75, "direction accuracy {ok}/{n}");
}
